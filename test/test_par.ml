(* The deterministic fork-join pool and the byte-identity contract of
   every driver built on it: results (and captured output, JSON, oracle
   verdicts, schedcheck outcomes) must be identical for any -j. *)

module Par = Mm_par.Par
module Driver = Mm_experiments.Driver
module Registry = Mm_experiments.Registry
module Trace = Mm_workloads.Trace
module Diff = Mm_workloads.Diff
module System = Mm_workloads.System
module Serve = Mm_serve.Serve
module S = Mm_schedcheck.Schedcheck

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* -- jobs_of_string -- *)

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_jobs_of_string () =
  (match Par.jobs_of_string "4" with
  | Ok n -> check int "4" 4 n
  | Error m -> Alcotest.failf "rejected 4: %s" m);
  (match Par.jobs_of_string " 8 " with
  | Ok n -> check int "trimmed" 8 n
  | Error m -> Alcotest.failf "rejected ' 8 ': %s" m);
  List.iter
    (fun (s, frag) ->
      match Par.jobs_of_string s with
      | Ok n -> Alcotest.failf "accepted %S as %d" s n
      | Error m ->
        if not (contains_substring ~needle:frag m) then
          Alcotest.failf "error for %S lacks %S: %s" s frag m)
    [
      ("0", "at least 1");
      ("-3", "at least 1");
      ("x", "positive integer");
      ("", "positive integer");
      ("4.5", "positive integer");
    ]

(* -- Ordered merge and emission -- *)

let squares ~jobs n =
  let emitted = ref [] in
  let results =
    Par.run_timed
      ~emit:(fun t -> emitted := t.Par.value :: !emitted)
      ~jobs
      (List.init n (fun i () ->
           (* Stagger completion so later-submitted tasks tend to finish
              first under real parallelism; the merge must hide that. *)
           if i < 2 then Unix.sleepf 0.02;
           i * i))
  in
  (List.map (fun t -> t.Par.value) results, List.rev !emitted)

let test_ordered_merge () =
  let expected = List.init 16 (fun i -> i * i) in
  let r1, e1 = squares ~jobs:1 16 in
  let r8, e8 = squares ~jobs:8 16 in
  check (Alcotest.list int) "results -j1" expected r1;
  check (Alcotest.list int) "results -j8" expected r8;
  check (Alcotest.list int) "emit order -j1" expected e1;
  check (Alcotest.list int) "emit order -j8" expected e8

let test_jobs_exceed_tasks () =
  let r = Par.map ~jobs:8 (fun x -> x + 1) [ 10; 20; 30 ] in
  check (Alcotest.list int) "3 tasks on 8 jobs" [ 11; 21; 31 ] r

let test_timed_nonnegative () =
  List.iter
    (fun t ->
      if t.Par.seconds < 0. then Alcotest.fail "negative task seconds")
    (Par.run_timed ~jobs:2 (List.init 4 (fun i () -> i)))

(* -- Exception propagation: the lowest-indexed failure wins -- *)

exception Boom of int

let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      match
        Par.run ~jobs
          (List.init 8 (fun i () ->
               if i = 2 || i = 5 then raise (Boom i) else i))
      with
      | _ -> Alcotest.failf "-j%d: no exception raised" jobs
      | exception Boom i ->
        check int (Printf.sprintf "-j%d first failure" jobs) 2 i)
    [ 1; 4 ]

let test_jobs_zero_rejected () =
  match Par.run ~jobs:0 [ (fun () -> ()) ] with
  | _ -> Alcotest.fail "jobs:0 accepted"
  | exception Invalid_argument _ -> ()

(* -- ~order is a pure scheduling hint: any permutation of the claim
      order leaves results and emission in submission order -- *)

let test_order_hint () =
  let n = 12 in
  let expected = List.init n (fun i -> i * 3) in
  List.iter
    (fun order ->
      let emitted = ref [] in
      let results =
        Par.run_timed
          ~emit:(fun t -> emitted := t.Par.value :: !emitted)
          ~order ~jobs:3
          (List.init n (fun i () -> i * 3))
      in
      check (Alcotest.list int) "results in submission order" expected
        (List.map (fun t -> t.Par.value) results);
      check (Alcotest.list int) "emission in submission order" expected
        (List.rev !emitted))
    [
      Array.init n (fun k -> n - 1 - k) (* reversed *);
      Array.init n (fun k -> (k * 5) mod n) (* 5 coprime to 12: scrambled *);
      Array.init n Fun.id (* identity *);
    ];
  (* Non-permutations are rejected up front. *)
  List.iter
    (fun order ->
      match Par.run_timed ~order ~jobs:2 [ (fun () -> 0); (fun () -> 1) ] with
      | _ -> Alcotest.fail "bad order accepted"
      | exception Invalid_argument _ -> ())
    [ [| 0 |]; [| 0; 0 |]; [| 0; 2 |]; [| -1; 0 |] ]

(* With ~order, a failure in a late-submitted task must not skip
   earlier-submitted tasks (the sequential run would have completed
   them): the lowest-submitted failure still wins. *)
let test_order_failure_lowest_submitted () =
  List.iter
    (fun jobs ->
      match
        Par.run_timed ~jobs
          ~order:(Array.init 8 (fun k -> 7 - k))
          (List.init 8 (fun i () ->
               if i = 2 || i = 5 then raise (Boom i) else i))
      with
      | _ -> Alcotest.failf "-j%d: no exception raised" jobs
      | exception Boom i ->
        check int (Printf.sprintf "-j%d first failure" jobs) 2 i)
    [ 1; 4 ]

(* -- Byte identity: bench's experiment driver -- *)

let entries_of ids =
  List.map
    (fun id ->
      match Registry.find id with
      | Ok e -> e
      | Error m -> Alcotest.fail m)
    ids

let test_driver_identical () =
  let entries = entries_of [ "tab2"; "fig13" ] in
  let r1 = Driver.run_entries ~collect:true ~jobs:1 entries in
  let r4 = Driver.run_entries ~collect:true ~jobs:4 entries in
  List.iter2
    (fun (a : Driver.task_result) (b : Driver.task_result) ->
      check string (a.Driver.t_id ^ " id") a.Driver.t_id b.Driver.t_id;
      check string (a.Driver.t_id ^ " output") a.Driver.t_output
        b.Driver.t_output;
      if a.Driver.t_results <> b.Driver.t_results then
        Alcotest.failf "%s: collected results differ across -j" a.Driver.t_id;
      if String.length a.Driver.t_output = 0 then
        Alcotest.failf "%s: empty captured output" a.Driver.t_id)
    r1 r4

(* -- Byte identity: cell-decomposed entries. A reduced fig14 sweep
   (the heaviest cell-based entry) must render the same bytes and
   collect the same results whether its cells run on one domain or
   four. -- *)

let reduced_fig14_entry =
  {
    Registry.id = "fig14";
    title = "reduced multithreaded microbenchmark sweep";
    body =
      Registry.Cells
        (fun () ->
          Mm_experiments.Fig_micro.fig14_plan
            ~systems:
              [ System.Linux; System.Corten Cortenmm.Config.adv ]
            ~benches:[ Mm_workloads.Micro.Mmap_pf ]
            ~cores:[ 1; 2 ] ~iters:5 ());
  }

let test_cells_identical () =
  let run jobs =
    Driver.run_entries ~collect:true ~jobs [ reduced_fig14_entry ]
  in
  match (run 1, run 4) with
  | [ a ], [ b ] ->
    check string "output -j1 = -j4" a.Driver.t_output b.Driver.t_output;
    if a.Driver.t_results <> b.Driver.t_results then
      Alcotest.fail "collected results differ across -j";
    if List.length a.Driver.t_cells < 2 then
      Alcotest.fail "expected a multi-cell decomposition";
    if
      List.map (fun c -> c.Driver.ct_label) a.Driver.t_cells
      <> List.map (fun c -> c.Driver.ct_label) b.Driver.t_cells
    then Alcotest.fail "cell labels differ across -j"
  | _ -> Alcotest.fail "expected exactly one task result per run"

(* A raising cell fails its entry with the lowest-submitted exception,
   exactly as the sequential render would have seen it. *)
let test_cell_failure_lowest_index () =
  let entry =
    {
      Registry.id = "boom";
      title = "raising cells";
      body =
        Registry.Cells
          (fun () ->
            let cells =
              List.init 6 (fun i ->
                  Mm_experiments.Plan.cell
                    ~label:(Printf.sprintf "cell%d" i)
                    ~weight:(float_of_int i)
                    (fun () ->
                      if i = 1 || i = 3 then raise (Boom i) else None))
            in
            { Mm_experiments.Plan.cells; render = (fun _ -> ()) });
    }
  in
  List.iter
    (fun jobs ->
      match Driver.run_entries ~jobs [ entry ] with
      | _ -> Alcotest.failf "-j%d: no exception raised" jobs
      | exception Boom i ->
        check int (Printf.sprintf "-j%d first failing cell" jobs) 1 i)
    [ 1; 4 ]

(* -- Byte identity: serving matrix -- *)

let test_serve_matrix_identical () =
  let systems =
    List.filteri (fun i _ -> i < 2) System.Registry.all
  in
  let policies =
    List.map
      (fun n ->
        match Serve.find_policy n with
        | Ok p -> (n, p)
        | Error m -> Alcotest.fail m)
      Serve.policy_names
  in
  let go jobs =
    let reports =
      Serve.run_matrix ~jobs ~systems ~mix:(List.hd Mm_serve.Mix.all)
        ~policies ~ncpus:4 ~sessions:400 ~seed:7 ()
    in
    Mm_obs.Json.to_string
      (Serve.report_json ~mix:(List.hd Mm_serve.Mix.all) ~ncpus:4
         ~sessions:400 ~seed:7 reports)
  in
  check string "serve json -j1 = -j3" (go 1) (go 3)

(* -- Byte identity: differential oracle -- *)

let broken_munmap (b : System.backend) : System.backend =
  let module B = (val b) in
  (module struct
    include B

    let name = B.name ^ "-broken-munmap"
    let munmap _ ~addr:_ ~len:_ = Ok ()
  end)

let test_oracle_identical () =
  let trace =
    Trace.generate ~profile:Trace.Mixed ~ncpus:4 ~ops_per_cpu:80 ~seed:42
  in
  let clean1 = Diff.run ~jobs:1 trace in
  let clean3 = Diff.run ~jobs:3 trace in
  if clean1 <> clean3 then Alcotest.fail "clean verdict differs across -j";
  let linux = System.backend_of_kind System.Linux in
  let backends = [ linux; broken_munmap linux ] in
  let churn =
    Trace.generate ~profile:Trace.Churn ~ncpus:2 ~ops_per_cpu:80 ~seed:42
  in
  match
    (Diff.run ~check_every:1 ~jobs:1 ~backends churn,
     Diff.run ~check_every:1 ~jobs:2 ~backends churn)
  with
  | Ok _, _ | _, Ok _ -> Alcotest.fail "broken munmap not caught"
  | Error a, Error b ->
    check string "divergence -j1 = -j2" (Diff.describe a) (Diff.describe b)

(* -- Byte identity: schedule exploration -- *)

let outcome_eq name a b =
  match (a, b) with
  | S.Clean { seeds = x }, S.Clean { seeds = y } ->
    check int (name ^ " seeds") x y
  | ( S.Violation { sched_seed = sa; keys = ka; violations = va; _ },
      S.Violation { sched_seed = sb; keys = kb; violations = vb; _ } ) ->
    check int (name ^ " seed") sa sb;
    check (Alcotest.list int) (name ^ " keys") (Array.to_list ka)
      (Array.to_list kb);
    check (Alcotest.list string) (name ^ " violations") va vb
  | _ -> Alcotest.failf "%s: verdict kind differs across -j" name

let test_schedcheck_identical () =
  let clean_cfg =
    {
      S.protocol = Cortenmm.Config.adv;
      cpus = 3;
      ops_per_cpu = 8;
      workload_seed = 42;
      mutant = S.M_none;
    }
  in
  outcome_eq "clean"
    (S.explore ~seeds:6 ~jobs:1 clean_cfg)
    (S.explore ~seeds:6 ~jobs:4 clean_cfg);
  let mutant_cfg =
    {
      S.protocol = Cortenmm.Config.rw;
      cpus = 4;
      ops_per_cpu = 12;
      workload_seed = 42;
      mutant = S.M_rw_skip_handoff;
    }
  in
  outcome_eq "mutant"
    (S.explore ~seeds:10 ~jobs:1 mutant_cfg)
    (S.explore ~seeds:10 ~jobs:4 mutant_cfg)

let () =
  Alcotest.run "mm_par"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs_of_string" `Quick test_jobs_of_string;
          Alcotest.test_case "ordered merge + emit" `Quick test_ordered_merge;
          Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "timed nonnegative" `Quick test_timed_nonnegative;
          Alcotest.test_case "lowest-index failure" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "jobs 0 rejected" `Quick test_jobs_zero_rejected;
          Alcotest.test_case "order hint" `Quick test_order_hint;
          Alcotest.test_case "order + lowest-submitted failure" `Quick
            test_order_failure_lowest_submitted;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "experiment driver" `Slow test_driver_identical;
          Alcotest.test_case "cell-decomposed fig14" `Slow
            test_cells_identical;
          Alcotest.test_case "cell failure" `Quick
            test_cell_failure_lowest_index;
          Alcotest.test_case "serve matrix" `Slow test_serve_matrix_identical;
          Alcotest.test_case "differential oracle" `Slow
            test_oracle_identical;
          Alcotest.test_case "schedcheck explore" `Slow
            test_schedcheck_identical;
        ] );
    ]
