(* Tests for lib/obs: ring-buffer mechanics, the determinism guarantee
   (identical runs produce byte-identical event streams; tracing never
   perturbs virtual time), Chrome trace_event export, the metrics
   registry, the contention profile, and agreement between the traced
   Stale_retry events and [Addr_space.stale_retries]. *)

module Engine = Mm_sim.Engine
module Ring = Mm_obs.Ring
module Event = Mm_obs.Event
module Trace = Mm_obs.Trace
module Metrics = Mm_obs.Metrics
module Contention = Mm_obs.Contention
module Json = Mm_obs.Json
module Chrome = Mm_obs.Chrome
module Micro = Mm_workloads.Micro
module Runner = Mm_workloads.Runner
module System = Mm_workloads.System

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -- Ring buffer -- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check Alcotest.int "empty" 0 (Ring.length r);
  List.iter (fun i -> Ring.push r i) [ 0; 1; 2 ];
  check Alcotest.int "partial" 3 (Ring.length r);
  check Alcotest.int "no drops" 0 (Ring.dropped r);
  check Alcotest.(list int) "order" [ 0; 1; 2 ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.push r i
  done;
  check Alcotest.int "full" 4 (Ring.length r);
  check Alcotest.int "dropped" 6 (Ring.dropped r);
  (* Oldest-first survivors are the last [capacity] pushes. *)
  check Alcotest.(list int) "survivors" [ 6; 7; 8; 9 ] (Ring.to_list r);
  Ring.clear r;
  check Alcotest.int "cleared" 0 (Ring.length r)

(* -- Trace sessions -- *)

let test_trace_off_is_noop () =
  check Alcotest.bool "off" false (Trace.on ());
  (* Emitting without a session must be a silent no-op. *)
  Trace.emit ~time:0 ~cpu:0 Event.Rcu_enter;
  check Alcotest.int "nothing recorded" 0 (List.length (Trace.events ()))

let run_micro () =
  Micro.run
    ~kind:(System.Corten Cortenmm.Config.adv)
    ~ncpus:4 ~bench:Micro.Pf ~contention:Micro.High ~iters:20 ()

let traced_micro () =
  Trace.start ~capacity:(1 lsl 18) ();
  let r = run_micro () in
  let events = Trace.stop () in
  (r, events)

let test_trace_determinism () =
  let r1, e1 = traced_micro () in
  let r2, e2 = traced_micro () in
  check Alcotest.bool "events recorded" true (List.length e1 > 0);
  check Alcotest.bool "byte-identical streams" true
    (Trace.to_text e1 = Trace.to_text e2);
  match (r1, r2) with
  | Some r1, Some r2 ->
    check Alcotest.int "identical cycles" r1.Runner.cycles r2.Runner.cycles
  | _ -> Alcotest.fail "micro benchmark did not run"

let test_tracing_does_not_perturb () =
  (* The same workload, traced and untraced, must report bit-identical
     virtual-time results: recording never advances simulated time. *)
  let plain =
    match run_micro () with
    | Some r -> r.Runner.cycles
    | None -> Alcotest.fail "micro benchmark did not run"
  in
  let traced =
    match traced_micro () with
    | Some r, _ -> r.Runner.cycles
    | None, _ -> Alcotest.fail "micro benchmark did not run"
  in
  check Alcotest.int "cycles identical with tracing on" plain traced

(* -- Chrome export -- *)

let test_chrome_json_wellformed () =
  let _, events = traced_micro () in
  let text = Json.to_string (Chrome.to_json events) in
  match Json.parse text with
  | Error msg -> Alcotest.fail ("chrome JSON does not parse: " ^ msg)
  | Ok json -> (
    match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
    | None -> Alcotest.fail "no traceEvents array"
    | Some items ->
      check Alcotest.bool "has events" true (List.length items > 0);
      List.iter
        (fun item ->
          List.iter
            (fun field ->
              if Json.member field item = None then
                Alcotest.fail ("event missing field " ^ field))
            [ "name"; "ph"; "pid"; "tid" ];
          (* Complete events reconstruct [time - span, time]: ts must not
             go negative. *)
          match (Json.member "ph" item, Json.member "ts" item) with
          | Some (Json.String "X"), Some (Json.Int ts) ->
            check Alcotest.bool "span ts >= 0" true (ts >= 0)
          | _ -> ())
        items)

(* -- JSON corner cases -- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("l", Json.List [ Json.Int 1; Json.Null; Json.Bool true ]);
        ("f", Json.Float 1.5);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "roundtrip" true (v = v')
  | Error msg -> Alcotest.fail msg

let test_json_rejects_garbage () =
  (match Json.parse "{\"a\": }" with
  | Ok _ -> Alcotest.fail "accepted malformed object"
  | Error _ -> ());
  match Json.parse "[1,2] trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

(* -- Metrics -- *)

let test_metrics () =
  Metrics.reset ();
  let c = Metrics.counter "test.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check Alcotest.int "counter" 5 (Metrics.count c);
  check Alcotest.bool "find-or-create" true (c == Metrics.counter "test.count");
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1; 2; 4; 8 ];
  check Alcotest.int "samples" 4 (Metrics.samples h);
  check Alcotest.int "total" 15 (Metrics.total h);
  check Alcotest.int "max" 8 (Metrics.max_value h);
  check (Alcotest.float 0.001) "mean" 3.75 (Metrics.mean h);
  check Alcotest.bool "median bucket" true (Metrics.quantile h 0.5 <= 4);
  let dump = Metrics.dump () in
  check Alcotest.bool "dump lists counter" true
    (contains ~needle:"test.count" dump);
  check Alcotest.bool "dump lists histogram" true
    (contains ~needle:"test.hist" dump);
  Metrics.reset ();
  check Alcotest.int "reset" 0 (Metrics.count (Metrics.counter "test.count"))

(* -- Contention profile -- *)

let test_contention_ranking () =
  Trace.start ();
  let hot = Mm_sim.Mutex_s.make ~name:"test.hot" () in
  let cold = Mm_sim.Mutex_s.make ~name:"test.cold" () in
  let w = Engine.create ~ncpus:4 in
  for cpu = 0 to 3 do
    Engine.spawn w ~cpu (fun () ->
        for _ = 1 to 10 do
          Mm_sim.Mutex_s.lock hot;
          Engine.tick 500;
          Mm_sim.Mutex_s.unlock hot
        done;
        if cpu = 0 then begin
          Mm_sim.Mutex_s.lock cold;
          Mm_sim.Mutex_s.unlock cold
        end)
  done;
  Engine.run w;
  (match Contention.top () with
  | None -> Alcotest.fail "no contention recorded"
  | Some e ->
    check Alcotest.string "top lock is the hot one" "test.hot"
      e.Contention.name;
    check Alcotest.bool "serialized cycles recorded" true
      (e.Contention.wait_cycles > 0);
    check Alcotest.int "all acquisitions counted" 40
      e.Contention.acquisitions);
  let report = Contention.report () in
  check Alcotest.bool "report names the hot lock" true
    (contains ~needle:"test.hot" report);
  ignore (Trace.stop ())

(* -- Engine stats satellites -- *)

let test_engine_stats_consistency () =
  let m = Mm_sim.Mutex_s.make () in
  let w = Engine.create ~ncpus:4 in
  for cpu = 0 to 3 do
    Engine.spawn w ~cpu (fun () ->
        for _ = 1 to 5 do
          Mm_sim.Mutex_s.lock m;
          Engine.tick 100;
          Mm_sim.Mutex_s.unlock m
        done)
  done;
  Engine.run w;
  let s = Engine.stats w in
  check Alcotest.bool "parks >= wakes" true (s.Engine.parks >= s.Engine.wakes);
  check Alcotest.bool "wakes happened" true (s.Engine.wakes > 0);
  check Alcotest.bool "ready-queue high-water >= 1" true
    (s.Engine.max_ready_queue >= 1);
  check Alcotest.bool "high-water bounded by fibers" true
    (s.Engine.max_ready_queue <= 4)

(* -- Stale-retry agreement (adv protocol, Fig 6 L10-13) -- *)

let test_stale_retries_agree () =
  Trace.start ~capacity:(1 lsl 20) ();
  let asp_box = ref None in
  let ps = 4096 in
  let base = 0x4000_0000 in
  (* The window must span multiple L1 PT pages (> 2 MiB): [free_child]
     only fires on strict descendants of the unmapper's covering node, so
     a single-PT-page window never marks anything stale. *)
  let pages = 1024 in
  let len = pages * ps in
  let ncpus = 4 in
  ignore
    (Runner.run_phases ~ncpus
       ~setup:(fun () ->
         let kernel = Cortenmm.Kernel.create ~ncpus () in
         let asp = Cortenmm.Addr_space.create kernel Cortenmm.Config.adv in
         ignore (Mm_compat.mmap asp ~addr:base ~len ~perm:Mm_hal.Perm.rw ());
         asp_box := Some asp)
       ~measure:(fun cpu ->
         let asp = Option.get !asp_box in
         if cpu = 0 then
           (* Churn the window: each munmap empties the covering PT
              page(s), marking them stale under concurrent touchers. *)
           for _ = 1 to 20 do
             Mm_compat.munmap asp ~addr:base ~len;
             ignore
               (Mm_compat.mmap asp ~addr:base ~len ~perm:Mm_hal.Perm.rw ())
           done
         else
           for i = 1 to 120 do
             let v = base + ((cpu * 37) + i) mod pages * ps in
             try Cortenmm.Mm.touch asp ~vaddr:v ~write:true
             with Cortenmm.Mm.Fault _ -> ()
           done)
       ());
  let asp = Option.get !asp_box in
  let dropped = Trace.dropped () in
  let events = Trace.stop () in
  check Alcotest.int "no ring overflow" 0 dropped;
  let traced =
    List.length
      (List.filter (fun e -> e.Event.payload = Event.Stale_retry) events)
  in
  check Alcotest.bool "the retry path was exercised" true (traced > 0);
  check Alcotest.int "trace agrees with Addr_space.stale_retries"
    (Cortenmm.Addr_space.stale_retries asp)
    traced

(* -- Quantile error bounds --

   [Metrics.quantile] documents: for an exact rank-ceil(q*n) value
   x >= 1, the reported r satisfies x <= r <= max 1 (2x - 1) (and an
   exact 0 reports at most 1). Check it against exact sorted-sample
   percentiles over adversarial and random distributions. *)

let exact_quantile values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(rank - 1)

let check_quantile_bounds ~name values =
  let h = Metrics.unregistered name in
  List.iter (Metrics.observe h) values;
  List.iter
    (fun q ->
      let exact = exact_quantile values q in
      let approx = Metrics.quantile h q in
      let ub = if exact <= 0 then 1 else max 1 ((2 * exact) - 1) in
      check Alcotest.bool
        (Printf.sprintf "%s q=%.3f: %d <= %d (never under)" name q exact
           approx)
        true (approx >= exact);
      check Alcotest.bool
        (Printf.sprintf "%s q=%.3f: %d <= %d (within 2x)" name q approx ub)
        true (approx <= ub))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let test_quantile_bounds () =
  check_quantile_bounds ~name:"uniform" (List.init 1000 (fun i -> i + 1));
  check_quantile_bounds ~name:"constant" (List.init 100 (fun _ -> 42));
  check_quantile_bounds ~name:"powers"
    (List.init 500 (fun i -> 1 lsl (i mod 20)));
  check_quantile_bounds ~name:"bucket-edges"
    (List.concat_map (fun b -> [ (1 lsl b) - 1; 1 lsl b; (1 lsl b) + 1 ])
       (List.init 15 (fun b -> b + 1)));
  check_quantile_bounds ~name:"with-zeros"
    (0 :: 0 :: 0 :: List.init 50 (fun i -> i));
  let rng = Mm_util.Rng.create ~seed:7 in
  check_quantile_bounds ~name:"random-heavy-tail"
    (List.init 2000 (fun _ ->
         let base = Mm_util.Rng.int rng 1000 in
         if Mm_util.Rng.int rng 100 < 2 then base * 1000 else base))

let test_quantile_registry_independence () =
  (* unregistered histograms with one name do not share state, and never
     appear in the global enumeration. *)
  let a = Metrics.unregistered "indep" and b = Metrics.unregistered "indep" in
  Metrics.observe a 100;
  check Alcotest.int "a has the sample" 1 (Metrics.samples a);
  check Alcotest.int "b does not" 0 (Metrics.samples b);
  check Alcotest.bool "not in the registry" true
    (not (List.exists (fun (n, _) -> n = "indep") (Metrics.histograms ())))

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off is no-op" `Quick test_trace_off_is_noop;
          Alcotest.test_case "determinism" `Quick test_trace_determinism;
          Alcotest.test_case "zero perturbation" `Quick
            test_tracing_does_not_perturb;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome wellformed" `Quick
            test_chrome_json_wellformed;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_json_rejects_garbage;
        ] );
      ( "registries",
        [
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "quantile error bounds" `Quick
            test_quantile_bounds;
          Alcotest.test_case "unregistered histograms independent" `Quick
            test_quantile_registry_independence;
          Alcotest.test_case "contention ranking" `Quick
            test_contention_ranking;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine stats consistent" `Quick
            test_engine_stats_consistency;
          Alcotest.test_case "stale retries agree" `Quick
            test_stale_retries_agree;
        ] );
    ]
