(* Schedule-exploration harness: live checker units, schedule file
   roundtrips, clean exploration on both protocols, and mutant
   catching + shrinking + replay. *)

open Mm_schedcheck.Schedcheck
module Schedule = Mm_schedcheck.Schedule
module Live = Mm_verif.Live
module Monitor = Mm_sim.Monitor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* -- Live checker units (events fed by hand, no engine) -- *)

let feed events =
  let live = Live.create ~ncpus:4 in
  List.iter (Live.observe live) events;
  live

let test_live_mutex_clean () =
  let live =
    feed
      [
        Monitor.Mutex_acquired { lock = 1; cpu = 0 };
        Monitor.Mutex_released { lock = 1; cpu = 0 };
        Monitor.Mutex_acquired { lock = 1; cpu = 2 };
        Monitor.Mutex_released { lock = 1; cpu = 2 };
      ]
  in
  Live.check_quiescent live;
  check bool "clean" true (Live.ok live);
  check int "events" 4 (Live.events_seen live)

let test_live_mutex_double_acquire () =
  let live =
    feed
      [
        Monitor.Mutex_acquired { lock = 1; cpu = 0 };
        Monitor.Mutex_acquired { lock = 1; cpu = 1 };
      ]
  in
  check bool "violation recorded" false (Live.ok live)

let test_live_txn_overlap () =
  let live =
    feed
      [
        Monitor.Txn_locked { asp = 1; cpu = 0; lo = 0x1000; hi = 0x5000 };
        Monitor.Txn_locked { asp = 1; cpu = 1; lo = 0x4000; hi = 0x8000 };
      ]
  in
  check bool "P1 violation recorded" false (Live.ok live)

let test_live_txn_disjoint () =
  let live =
    feed
      [
        Monitor.Txn_locked { asp = 1; cpu = 0; lo = 0x1000; hi = 0x4000 };
        Monitor.Txn_locked { asp = 1; cpu = 1; lo = 0x4000; hi = 0x8000 };
        Monitor.Txn_committed { asp = 1; cpu = 0; lo = 0x1000; hi = 0x4000 };
        (* same range again, now free *)
        Monitor.Txn_locked { asp = 1; cpu = 2; lo = 0x1000; hi = 0x4000 };
        Monitor.Txn_committed { asp = 1; cpu = 2; lo = 0x1000; hi = 0x4000 };
        Monitor.Txn_committed { asp = 1; cpu = 1; lo = 0x4000; hi = 0x8000 };
      ]
  in
  Live.check_quiescent live;
  check bool "disjoint and sequential txns are clean" true (Live.ok live)

let test_live_rcu_grace_period () =
  let bad =
    feed
      [
        Monitor.Rcu_enter { cpu = 1 };
        Monitor.Rcu_defer { cb = 7; waiting = [| false; true; false; false |] };
        Monitor.Rcu_fire { cb = 7 };
      ]
  in
  check bool "fire before reader exits is a violation" false (Live.ok bad);
  let good =
    feed
      [
        Monitor.Rcu_enter { cpu = 1 };
        Monitor.Rcu_defer { cb = 7; waiting = [| false; true; false; false |] };
        Monitor.Rcu_exit { cpu = 1 };
        Monitor.Rcu_fire { cb = 7 };
      ]
  in
  check bool "fire after reader exits is clean" true (Live.ok good)

let test_live_quiescent () =
  let live = feed [ Monitor.Mutex_acquired { lock = 9; cpu = 3 } ] in
  check bool "no violation yet" true (Live.ok live);
  Live.check_quiescent live;
  check bool "held lock flagged at quiescence" false (Live.ok live)

(* -- Deferred frame frees (batched TLB shootdown) -- *)

let test_live_frame_reuse () =
  (* Reallocation overlapping a deferred-but-unflushed frame is the
     stale-translation use-after-free the batched policy must prevent. *)
  let bad =
    feed
      [
        Monitor.Frame_deferred { pfn = 100; pages = 2 };
        Monitor.Frame_allocated { pfn = 101; pages = 1 };
      ]
  in
  check bool "reuse before flush is a violation" false (Live.ok bad);
  let good =
    feed
      [
        Monitor.Frame_deferred { pfn = 100; pages = 2 };
        Monitor.Frame_freed { pfn = 100; pages = 2 };
        Monitor.Frame_allocated { pfn = 100; pages = 2 };
      ]
  in
  Live.check_quiescent good;
  check bool "reuse after flush is clean" true (Live.ok good);
  let unrelated =
    feed
      [
        Monitor.Frame_deferred { pfn = 100; pages = 2 };
        Monitor.Frame_allocated { pfn = 102; pages = 4 };
      ]
  in
  check bool "disjoint allocation is fine" true (Live.ok unrelated)

let test_live_frame_quiescence () =
  let live = feed [ Monitor.Frame_deferred { pfn = 7; pages = 1 } ] in
  check bool "no violation while running" true (Live.ok live);
  Live.check_quiescent live;
  check bool "never-flushed deferral flagged at end" false (Live.ok live)

(* The real thing: a multi-CPU CortenMM world under the batched policy.
   Every CPU touches a shared region (so its unmap has remote shootdown
   targets), one CPU unmaps (frames defer behind the batch), and a later
   timer tick ages the batch out. The live checker must see deferrals
   resolve with no reuse-before-flush. *)
let test_live_batched_unmap_clean () =
  let ncpus = 4 in
  let live = Live.create ~ncpus in
  let deferred = ref 0 and freed = ref 0 in
  Monitor.set (fun ev ->
      (match ev with
      | Monitor.Frame_deferred _ -> incr deferred
      | Monitor.Frame_freed _ -> incr freed
      | _ -> ());
      Live.observe live ev);
  Fun.protect ~finally:Monitor.clear @@ fun () ->
  let module Engine = Mm_sim.Engine in
  let kernel = Cortenmm.Kernel.create ~ncpus () in
  let asp = Cortenmm.Addr_space.create kernel Cortenmm.Config.adv in
  Mm_tlb.Tlb.set_policy
    (Cortenmm.Addr_space.tlb asp)
    (Mm_tlb.Tlb.Batched { window = 10_000; max_batch = 64 });
  let addr = 0x4000_0000 and pages = 4 in
  let len = pages * 4096 in
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      ignore (Mm_compat.mmap asp ~addr ~len ~perm:Mm_hal.Perm.rw ()));
  Engine.run w;
  let w = Engine.create ~ncpus in
  for c = 0 to ncpus - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        for p = 0 to pages - 1 do
          Cortenmm.Mm.touch asp ~vaddr:(addr + (p * 4096)) ~write:false
        done)
  done;
  Engine.run w;
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      Mm_compat.munmap asp ~addr ~len;
      check bool "frees were deferred" true (!deferred > 0);
      check int "not freed while the batch is pending" 0 !freed;
      (* Age the batch past its window; the tick flushes it. *)
      Engine.tick 20_000;
      Cortenmm.Mm.timer_tick asp);
  Engine.run w;
  check int "every deferred frame was freed by the flush" !deferred !freed;
  Live.check_quiescent live;
  (match Live.violations live with
  | [] -> ()
  | v :: _ -> Alcotest.failf "live checker violation: %s" v);
  check bool "clean" true (Live.ok live)

(* -- Backing-object lifecycle invariants -- *)

(* A well-formed fork/exit episode: base, two shadows, sibling exits
   (unref + destroy), base collapses into the survivor. *)
let test_live_obj_lifecycle_clean () =
  let live =
    feed
      [
        Monitor.Obj_created { obj = 1; parent = -1 };
        Monitor.Obj_created { obj = 2; parent = 1 };
        Monitor.Obj_ref { obj = 1; refs = 2 };
        Monitor.Obj_created { obj = 3; parent = 1 };
        Monitor.Obj_ref { obj = 1; refs = 3 };
        (* space 1 hands its own reference to the shadows *)
        Monitor.Obj_unref { obj = 1; refs = 2 };
        (* sibling 3 exits: base drops to one referent and collapses *)
        Monitor.Obj_unref { obj = 3; refs = 0 };
        Monitor.Obj_destroyed { obj = 3 };
        Monitor.Obj_unref { obj = 1; refs = 1 };
        Monitor.Obj_collapsed { obj = 1; into = 2 };
        Monitor.Obj_destroyed { obj = 1 };
      ]
  in
  Live.check_quiescent live;
  (match Live.violations live with
  | [] -> ()
  | v :: _ -> Alcotest.failf "live checker violation: %s" v);
  check bool "clean" true (Live.ok live)

let test_live_obj_refcount_lie () =
  let live =
    feed
      [
        Monitor.Obj_created { obj = 1; parent = -1 };
        Monitor.Obj_ref { obj = 1; refs = 5 };
      ]
  in
  check bool "reported refcount != tracked is a violation" false
    (Live.ok live)

let test_live_obj_bad_collapse () =
  let live =
    feed
      [
        Monitor.Obj_created { obj = 1; parent = -1 };
        Monitor.Obj_created { obj = 2; parent = 1 };
        Monitor.Obj_ref { obj = 1; refs = 2 };
        Monitor.Obj_created { obj = 3; parent = 1 };
        Monitor.Obj_ref { obj = 1; refs = 3 };
        (* collapsing a base both shadows still reference *)
        Monitor.Obj_collapsed { obj = 1; into = 2 };
      ]
  in
  check bool "multi-referent collapse is a violation" false (Live.ok live)

let test_live_obj_use_after_death () =
  let live =
    feed
      [
        Monitor.Obj_created { obj = 1; parent = -1 };
        Monitor.Obj_unref { obj = 1; refs = 0 };
        Monitor.Obj_destroyed { obj = 1 };
        Monitor.Obj_ref { obj = 1; refs = 1 };
      ]
  in
  check bool "referencing a destroyed object is a violation" false
    (Live.ok live)

let test_live_obj_leak_at_quiescence () =
  let live =
    feed
      [
        Monitor.Obj_created { obj = 1; parent = -1 };
        Monitor.Obj_unref { obj = 1; refs = 0 };
        (* dropped to zero refs but its Obj_destroyed never came *)
      ]
  in
  check bool "no violation while running" true (Live.ok live);
  Live.check_quiescent live;
  check bool "zero-ref undestroyed object flagged at quiescence" false
    (Live.ok live)

(* The real thing: a monitored CortenMM world runs a two-level fork
   tree with COW breaks on both sides; the event stream must replay
   cleanly through every object invariant, and teardown must end with
   the root space back on a depth-one chain. *)
let test_live_obj_fork_world_clean () =
  let ncpus = 2 in
  let live = Live.create ~ncpus in
  let obj_events = ref 0 in
  Monitor.set (fun ev ->
      (match ev with
      | Monitor.Obj_created _ | Monitor.Obj_ref _ | Monitor.Obj_unref _
      | Monitor.Obj_collapsed _ | Monitor.Obj_destroyed _ ->
        incr obj_events
      | _ -> ());
      Live.observe live ev);
  Fun.protect ~finally:Monitor.clear @@ fun () ->
  let module Engine = Mm_sim.Engine in
  let kernel = Cortenmm.Kernel.create ~ncpus () in
  let asp = Cortenmm.Addr_space.create kernel Cortenmm.Config.adv in
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      let addr =
        Mm_compat.mmap asp ~len:(4 * 4096) ~perm:Mm_hal.Perm.rw ()
      in
      Cortenmm.Mm.write_value asp ~vaddr:addr ~value:1;
      let child = Cortenmm.Mm.fork asp in
      let grandchild = Cortenmm.Mm.fork child in
      Cortenmm.Mm.write_value child ~vaddr:addr ~value:2;
      Cortenmm.Mm.write_value grandchild ~vaddr:addr ~value:3;
      Cortenmm.Mm.write_value asp ~vaddr:addr ~value:4;
      Cortenmm.Mm.destroy grandchild;
      Cortenmm.Mm.destroy child;
      Cortenmm.Mm.destroy asp);
  Engine.run w;
  check bool "object events flowed" true (!obj_events > 0);
  Live.check_quiescent live;
  (match Live.violations live with
  | [] -> ()
  | v :: _ -> Alcotest.failf "live checker violation: %s" v);
  check bool "clean" true (Live.ok live)

(* -- Schedule files -- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_schedule_roundtrip () =
  let s =
    {
      Schedule.protocol = "adv";
      cpus = 4;
      ops = 12;
      workload_seed = 42;
      mutant = "rw-skip-handoff";
      keys = [| 0; 3; 1; 0; 7 |];
    }
  in
  let path = tmp "schedcheck_roundtrip.sched" in
  Schedule.save s path;
  (match Schedule.load path with
  | Ok s' -> check bool "roundtrip equal" true (s = s')
  | Error msg -> Alcotest.fail msg);
  let empty = { s with keys = [||]; mutant = "none" } in
  Schedule.save empty path;
  match Schedule.load path with
  | Ok s' -> check bool "empty keys roundtrip" true (empty = s')
  | Error msg -> Alcotest.fail msg

let test_schedule_load_errors () =
  (match Schedule.load (tmp "schedcheck_no_such_file.sched") with
  | Ok _ -> Alcotest.fail "expected error for missing file"
  | Error _ -> ());
  let path = tmp "schedcheck_bad_header.sched" in
  let oc = open_out path in
  output_string oc "not a schedule\n";
  close_out oc;
  match Schedule.load path with
  | Ok _ -> Alcotest.fail "expected error for bad header"
  | Error _ -> ()

(* -- Exploration -- *)

let cfg protocol mutant =
  { protocol; cpus = 4; ops_per_cpu = 10; workload_seed = 42; mutant }

let test_explore_clean () =
  List.iter
    (fun protocol ->
      match explore ~seeds:3 (cfg protocol M_none) with
      | Clean { seeds } -> check int "all seeds clean" 3 seeds
      | Violation { violations; _ } ->
          Alcotest.fail
            ("unexpected violation: " ^ String.concat "; " violations))
    [ Cortenmm.Config.adv; Cortenmm.Config.rw ]

let test_mutant_caught protocol mutant () =
  let c = { (cfg protocol mutant) with ops_per_cpu = 12 } in
  match explore ~seeds:10 c with
  | Clean _ -> Alcotest.fail "mutant not caught within 10 seeds"
  | Violation { keys; violations; _ } ->
      check bool "violations reported" false (violations = []);
      (* The minimized schedule must reproduce through a file roundtrip. *)
      let path = tmp ("schedcheck_" ^ mutant_name mutant ^ ".sched") in
      Schedule.save (schedule_of c keys) path;
      let s =
        match Schedule.load path with
        | Ok s -> s
        | Error msg -> Alcotest.fail msg
      in
      (match replay_schedule s with
      | Ok [] -> Alcotest.fail "replayed schedule came back clean"
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)

let test_replay_schedule_errors () =
  let s =
    {
      Schedule.protocol = "linux";
      cpus = 2;
      ops = 4;
      workload_seed = 1;
      mutant = "none";
      keys = [||];
    }
  in
  (match replay_schedule s with
  | Ok _ -> Alcotest.fail "expected unknown-protocol error"
  | Error _ -> ());
  match replay_schedule { s with protocol = "adv"; mutant = "chaos" } with
  | Ok _ -> Alcotest.fail "expected unknown-mutant error"
  | Error _ -> ()

let () =
  Alcotest.run "mm_schedcheck"
    [
      ( "live",
        [
          Alcotest.test_case "mutex clean" `Quick test_live_mutex_clean;
          Alcotest.test_case "mutex double acquire" `Quick
            test_live_mutex_double_acquire;
          Alcotest.test_case "txn overlap" `Quick test_live_txn_overlap;
          Alcotest.test_case "txn disjoint" `Quick test_live_txn_disjoint;
          Alcotest.test_case "rcu grace period" `Quick
            test_live_rcu_grace_period;
          Alcotest.test_case "quiescence" `Quick test_live_quiescent;
          Alcotest.test_case "frame reuse before flush" `Quick
            test_live_frame_reuse;
          Alcotest.test_case "frame deferral quiescence" `Quick
            test_live_frame_quiescence;
          Alcotest.test_case "obj lifecycle clean" `Quick
            test_live_obj_lifecycle_clean;
          Alcotest.test_case "obj refcount lie" `Quick
            test_live_obj_refcount_lie;
          Alcotest.test_case "obj bad collapse" `Quick
            test_live_obj_bad_collapse;
          Alcotest.test_case "obj use after death" `Quick
            test_live_obj_use_after_death;
          Alcotest.test_case "obj leak at quiescence" `Quick
            test_live_obj_leak_at_quiescence;
          Alcotest.test_case "obj fork world clean (corten, 2 cpus)" `Quick
            test_live_obj_fork_world_clean;
          Alcotest.test_case "batched unmap clean (corten, 4 cpus)" `Quick
            test_live_batched_unmap_clean;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "load errors" `Quick test_schedule_load_errors;
        ] );
      ( "explore",
        [
          Alcotest.test_case "clean on both protocols" `Quick
            test_explore_clean;
          Alcotest.test_case "rw mutant caught (rw)" `Quick
            (test_mutant_caught Cortenmm.Config.rw M_rw_skip_handoff);
          Alcotest.test_case "rcu mutant caught (adv)" `Quick
            (test_mutant_caught Cortenmm.Config.adv M_rcu_no_gp);
          Alcotest.test_case "replay errors" `Quick
            test_replay_schedule_errors;
        ] );
    ]
