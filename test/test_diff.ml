(* The differential cross-backend oracle: seeded traces must replay with
   zero divergences across all registered backends, and injected
   semantic mutations (a munmap that does nothing, an mprotect that lies,
   mem_stats that violate their invariants) must be caught with the
   offending op index. *)

module System = Mm_workloads.System
module Backend = Mm_workloads.Backend
module Trace = Mm_workloads.Trace
module Diff = Mm_workloads.Diff
module Errno = Mm_hal.Errno

let check = Alcotest.check

let assert_clean ~profile ~ncpus ~ops ~seed =
  let trace = Trace.generate ~profile ~ncpus ~ops_per_cpu:ops ~seed in
  match Diff.run trace with
  | Ok n ->
    check Alcotest.bool
      (Printf.sprintf "%s/%d checked some ops" (Trace.profile_name profile)
         seed)
      true (n > 0)
  | Error d ->
    Alcotest.failf "%s/%d diverged: %s" (Trace.profile_name profile) seed
      (Diff.describe d)

let test_churn_clean () = assert_clean ~profile:Trace.Churn ~ncpus:4 ~ops:120 ~seed:42
let test_faults_clean () = assert_clean ~profile:Trace.Faults ~ncpus:2 ~ops:150 ~seed:7
let test_mixed_clean () = assert_clean ~profile:Trace.Mixed ~ncpus:4 ~ops:120 ~seed:11
let test_forks_clean () = assert_clean ~profile:Trace.Forks ~ncpus:2 ~ops:100 ~seed:9

(* Fine-grained checking must agree with the default cadence. *)
let test_check_every_1_clean () =
  let trace = Trace.generate ~profile:Trace.Mixed ~ncpus:2 ~ops_per_cpu:60 ~seed:3 in
  match Diff.run ~check_every:1 trace with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "diverged: %s" (Diff.describe d)

(* -- Injected mutations -- *)

let linux = System.backend_of_kind System.Linux

(* A munmap that reports success without unmapping anything. *)
let broken_munmap (b : System.backend) : System.backend =
  let module B = (val b) in
  (module struct
    include B

    let name = B.name ^ "-broken-munmap"
    let munmap _ ~addr:_ ~len:_ = Ok ()
  end)

let test_broken_munmap_caught () =
  let trace = Trace.generate ~profile:Trace.Churn ~ncpus:2 ~ops_per_cpu:80 ~seed:42 in
  let first_munmap =
    let rec go i =
      if i >= Array.length trace.Trace.entries then
        Alcotest.fail "trace has no munmap"
      else
        match trace.Trace.entries.(i).Trace.op with
        | Trace.T_munmap _ -> i
        | _ -> go (i + 1)
    in
    go 0
  in
  match Diff.run ~check_every:1 ~backends:[ linux; broken_munmap linux ] trace with
  | Ok _ -> Alcotest.fail "broken munmap not caught"
  | Error d ->
    check Alcotest.int "attributed to the first munmap" first_munmap d.Diff.d_op;
    check Alcotest.string "solo invariant on the mutant"
      "linux-broken-munmap" d.Diff.d_backend_a

(* An mprotect that reports success but changes nothing: caught through
   the downstream observables (a write that should fault succeeding, or
   a page still writable in a snapshot). *)
let silent_mprotect (b : System.backend) : System.backend =
  let module B = (val b) in
  (module struct
    include B

    let name = B.name ^ "-silent-mprotect"
    let mprotect _ ~addr:_ ~len:_ ~perm:_ = Ok ()
  end)

let test_silent_mprotect_caught () =
  let e cpu op = { Trace.cpu; proc = 0; op } in
  let trace =
    {
      Trace.ncpus = 1;
      entries =
        [|
          e 0 (Trace.T_mmap { id = 1; len = 16384; writable = true });
          e 0 (Trace.T_touch { id = 1; page = 0; write = true });
          e 0 (Trace.T_mprotect { id = 1; writable = false });
          e 0 (Trace.T_touch { id = 1; page = 0; write = true });
          e 0 (Trace.T_munmap { id = 1 });
        |];
    }
  in
  match
    Diff.run ~check_every:1 ~backends:[ linux; silent_mprotect linux ] trace
  with
  | Ok _ -> Alcotest.fail "silent mprotect not caught"
  | Error d ->
    (* With per-op snapshots the lie surfaces at the mprotect itself:
       the page stays writable on the mutant. *)
    check Alcotest.int "attributed to the mprotect" 2 d.Diff.d_op

(* mem_stats whose high-water mark lags behind the current residency. *)
let lying_stats (b : System.backend) : System.backend =
  let module B = (val b) in
  (module struct
    include B

    let name = B.name ^ "-lying-stats"

    let mem_stats t =
      let m = B.mem_stats t in
      { m with Backend.peak_resident_bytes = m.Backend.resident_bytes - 1 }
  end)

let test_stats_invariant_caught () =
  let trace = Trace.generate ~profile:Trace.Churn ~ncpus:1 ~ops_per_cpu:30 ~seed:5 in
  match Diff.run ~check_every:1 ~backends:[ lying_stats linux ] trace with
  | Ok _ -> Alcotest.fail "stats invariant violation not caught"
  | Error d ->
    check Alcotest.string "solo violation" d.Diff.d_backend_a d.Diff.d_backend_b;
    check Alcotest.bool "blames mem_stats" true
      (String.length d.Diff.d_what >= 9
      && String.sub d.Diff.d_what 0 9 = "mem_stats")

(* The canonical COW-isolation trace: fork, a parent store after the
   fork, then a child read that must still see the pre-fork value. Clean
   across the whole registry; with the injected CortenMM fork mutant
   (clone_for_fork skips the parent-side write-protect) the parent's
   post-fork store lands in the shared frame unprotected, and the value
   model must pin the divergence to the child's read — the exact op. *)
let cow_trace =
  let e proc op = { Trace.cpu = 0; proc; op } in
  {
    Trace.ncpus = 1;
    entries =
      [|
        e 0 (Trace.T_mmap { id = 1; len = 16384; writable = true });
        e 0 (Trace.T_write { id = 1; page = 0; value = 11111 });
        e 0 (Trace.T_fork { child = 1 });
        e 0 (Trace.T_write { id = 1; page = 0; value = 22222 });
        e 1 (Trace.T_read { id = 1; page = 0 });
        e 1 Trace.T_exit;
      |];
  }

let test_fork_cow_clean () =
  match Diff.run ~check_every:1 cow_trace with
  | Ok n -> check Alcotest.int "all ops checked" 6 n
  | Error d -> Alcotest.failf "clean fork trace diverged: %s" (Diff.describe d)

let test_fork_cow_mutant_caught () =
  match Diff.run ~check_every:1 ~cow_mutant:true cow_trace with
  | Ok _ -> Alcotest.fail "fork COW mutant not caught"
  | Error d ->
    check Alcotest.int "attributed to the child's read" 4 d.Diff.d_op;
    check Alcotest.string "solo violation on the mutated backend"
      d.Diff.d_backend_a d.Diff.d_backend_b

(* The masking rules: backends without mprotect legitimately diverge on
   post-mprotect writability, so a Mixed trace across the full registry
   (which pairs linux with radixvm/nros) must still be clean — covered by
   [test_mixed_clean] — while two mprotect-capable backends must agree
   exactly. *)
let test_corten_vs_linux_mixed () =
  let trace = Trace.generate ~profile:Trace.Mixed ~ncpus:2 ~ops_per_cpu:100 ~seed:23 in
  let corten = System.backend_of_kind (System.Corten Cortenmm.Config.adv) in
  match Diff.run ~backends:[ linux; corten ] trace with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "diverged: %s" (Diff.describe d)

let () =
  Alcotest.run "diff-oracle"
    [
      ( "clean",
        [
          Alcotest.test_case "churn across registry" `Quick test_churn_clean;
          Alcotest.test_case "faults across registry" `Quick test_faults_clean;
          Alcotest.test_case "mixed across registry" `Quick test_mixed_clean;
          Alcotest.test_case "forks across registry" `Quick test_forks_clean;
          Alcotest.test_case "check_every=1" `Quick test_check_every_1_clean;
          Alcotest.test_case "corten vs linux, mixed" `Quick
            test_corten_vs_linux_mixed;
          Alcotest.test_case "fork COW isolation clean" `Quick
            test_fork_cow_clean;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "broken munmap caught at op" `Quick
            test_broken_munmap_caught;
          Alcotest.test_case "fork COW mutant caught at child read" `Quick
            test_fork_cow_mutant_caught;
          Alcotest.test_case "silent mprotect caught" `Quick
            test_silent_mprotect_caught;
          Alcotest.test_case "stats invariant caught" `Quick
            test_stats_invariant_caught;
        ] );
    ]
