(* Tests for the two remaining extensions: transparent huge-page
   promotion (khugepaged) and the second-chance swap daemon. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let mib n = n * 1024 * 1024

let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let make_asp ?(cfg = Config.adv) () =
  let kernel = Kernel.create ~ncpus:1 () in
  (kernel, Addr_space.create kernel cfg)

let status_at asp addr =
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
      Addr_space.query c addr)

(* -- THP promotion -- *)

let fill_2mib asp addr =
  Mm.touch_range asp ~addr ~len:(mib 2) ~write:true

let test_promote_basic () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      fill_2mib asp addr;
      Mm.write_value asp ~vaddr:(addr + (123 * page)) ~value:777;
      let pt_before = Mm_pt.Pt.pt_page_count (Addr_space.pt asp) in
      check Alcotest.bool "promotes" true (Mm.promote_huge asp ~vaddr:addr);
      (* The L1 PT page is gone; the mapping is one huge leaf. *)
      check Alcotest.int "one PT page fewer" (pt_before - 1)
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));
      (* Data survives the copy, at every offset. *)
      check Alcotest.int "value preserved" 777
        (Mm.read_value asp ~vaddr:(addr + (123 * page)));
      Addr_space.check_well_formed asp)

let test_promote_rejects_partial () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      (* Only half the pages are resident. *)
      Mm.touch_range asp ~addr ~len:(mib 1) ~write:true;
      check Alcotest.bool "rejected" false (Mm.promote_huge asp ~vaddr:addr))

let test_promote_rejects_cow () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      fill_2mib asp addr;
      let child = Mm.fork asp in
      (* Shared COW pages must not be promoted out from under the child. *)
      check Alcotest.bool "rejected while COW-shared" false
        (Mm.promote_huge asp ~vaddr:addr);
      ignore child)

let test_promoted_page_unmaps () =
  in_sim (fun () ->
      let kernel, asp = make_asp () in
      let anon () =
        (Mm_phys.Phys.usage kernel.Kernel.phys).Mm_phys.Phys.anon_bytes
      in
      let before = anon () in
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      fill_2mib asp addr;
      ignore (Mm.promote_huge asp ~vaddr:addr);
      Mm_compat.munmap asp ~addr ~len:(mib 2);
      (* The whole 512-frame huge block is released. *)
      check Alcotest.int "anon frames released" before (anon ());
      Addr_space.check_well_formed asp)

let test_khugepaged_scans () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a1 = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      let a2 = Mm_compat.mmap asp ~addr:(mib 1024) ~len:(mib 2) ~perm:Perm.rw () in
      fill_2mib asp a1;
      fill_2mib asp a2;
      check Alcotest.int "promotes both regions" 2 (Mm.khugepaged asp);
      check Alcotest.int "second scan finds nothing" 0 (Mm.khugepaged asp))

let test_auto_thp () =
  in_sim (fun () ->
      let kernel = Kernel.create ~ncpus:1 () in
      let asp = Addr_space.create kernel (Config.with_thp Config.adv) in
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      (* Touching the last page completes the leaf: auto-promotion. *)
      fill_2mib asp addr;
      match status_at asp (addr + page) with
      | Status.Mapped { pfn; _ } ->
        (* An interior page of a huge leaf: pfn is block-contiguous. *)
        let head =
          match status_at asp addr with
          | Status.Mapped { pfn; _ } -> pfn
          | _ -> Alcotest.fail "head not mapped"
        in
        check Alcotest.int "contiguous block" (head + 1) pfn
      | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s))

(* -- Swap daemon -- *)

let test_swapd_reclaims_cold () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:(64 * page) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(64 * page) ~write:true;
      (* Pass 1 strips accessed bits; pass 2 reclaims cold pages. *)
      let stats = Swapd.fresh_stats () in
      let got = Swapd.reclaim ~stats asp ~dev ~target:16 in
      check Alcotest.int "reclaimed the target" 16 got;
      check Alcotest.bool "second chances given" true
        (stats.Swapd.second_chances > 0);
      check Alcotest.int "device holds 16 blocks" 16 (Blockdev.used_blocks dev))

let test_swapd_spares_hot () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:(32 * page) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(32 * page) ~write:true;
      let hot = addr in
      (* Strip everyone's accessed bit, then re-touch only the hot page. *)
      ignore (Swapd.run_once asp ~dev ~target:0);
      Mm.timer_tick asp;
      Mm.touch asp ~vaddr:hot ~write:false;
      (* Now reclaim: the hot page must survive this pass. *)
      ignore (Swapd.run_once asp ~dev ~target:31);
      (match status_at asp hot with
      | Status.Mapped _ -> ()
      | s -> Alcotest.failf "hot page was swapped: %s" (Status.to_string s));
      match status_at asp (addr + (5 * page)) with
      | Status.Swapped _ -> ()
      | s -> Alcotest.failf "cold page not swapped: %s" (Status.to_string s))

let test_swapd_roundtrip () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:(16 * page) ~perm:Perm.rw () in
      for i = 0 to 15 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(100 + i)
      done;
      ignore (Swapd.reclaim asp ~dev ~target:16);
      (* Every page faults back in with its data. *)
      for i = 0 to 15 do
        check Alcotest.int
          (Printf.sprintf "page %d data" i)
          (100 + i)
          (Mm.read_value asp ~vaddr:(addr + (i * page)))
      done;
      check Alcotest.int "all blocks freed after swap-in" 0
        (Blockdev.used_blocks dev);
      Addr_space.check_well_formed asp)

let test_swapd_skips_shared () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:1;
      let child = Mm.fork asp in
      (* COW-shared pages are unreclaimable by the simple daemon. *)
      let got = Swapd.reclaim asp ~dev ~target:1 in
      check Alcotest.int "nothing reclaimed" 0 got;
      ignore child)

let () =
  Alcotest.run "thp-swapd"
    [
      ( "thp",
        [
          Alcotest.test_case "promote basic" `Quick test_promote_basic;
          Alcotest.test_case "rejects partial" `Quick
            test_promote_rejects_partial;
          Alcotest.test_case "rejects COW" `Quick test_promote_rejects_cow;
          Alcotest.test_case "promoted unmaps cleanly" `Quick
            test_promoted_page_unmaps;
          Alcotest.test_case "khugepaged" `Quick test_khugepaged_scans;
          Alcotest.test_case "auto-THP on fault" `Quick test_auto_thp;
        ] );
      ( "swapd",
        [
          Alcotest.test_case "reclaims cold" `Quick test_swapd_reclaims_cold;
          Alcotest.test_case "spares hot" `Quick test_swapd_spares_hot;
          Alcotest.test_case "roundtrip" `Quick test_swapd_roundtrip;
          Alcotest.test_case "skips shared" `Quick test_swapd_skips_shared;
        ] );
    ]
