(* Tests for the Intel MPK extension (Table 5's "new MMU feature"):
   protection keys stored in the PTE, gated by the per-CPU PKRU register,
   checked on every access including TLB hits. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let kib n = n * 1024

let in_sim ?(ncpus = 1) ?(cpu = 0) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let setup () =
  let kernel = Kernel.create ~ncpus:2 () in
  (kernel, Addr_space.create kernel Config.adv)

let test_key_allows_by_default () =
  let _, asp = setup () in
  in_sim ~ncpus:2 (fun () ->
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm.pkey_mprotect asp ~addr ~len:(kib 16) ~perm:Perm.rw ~key:5;
      (* No PKRU denial set: access proceeds. *)
      Mm.touch asp ~vaddr:addr ~write:true)

let test_pkru_denies_access () =
  let kernel, asp = setup () in
  in_sim ~ncpus:2 (fun () ->
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm.pkey_mprotect asp ~addr ~len:page ~perm:Perm.rw ~key:3;
      Kernel.wrpkru kernel ~cpu:0 ~key:3 ~deny_access:true ~deny_write:true;
      (match Mm.touch asp ~vaddr:addr ~write:false with
      | () -> Alcotest.fail "read should be denied by PKRU"
      | exception Mm.Fault _ -> ());
      (* Re-enabling the key restores access — no TLB flush needed. *)
      Kernel.wrpkru kernel ~cpu:0 ~key:3 ~deny_access:false ~deny_write:false;
      Mm.touch asp ~vaddr:addr ~write:true)

let test_pkru_write_only_denial () =
  let kernel, asp = setup () in
  in_sim ~ncpus:2 (fun () ->
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm.pkey_mprotect asp ~addr ~len:page ~perm:Perm.rw ~key:2;
      Kernel.wrpkru kernel ~cpu:0 ~key:2 ~deny_access:false ~deny_write:true;
      Mm.touch asp ~vaddr:addr ~write:false (* reads still allowed *);
      match Mm.touch asp ~vaddr:addr ~write:true with
      | () -> Alcotest.fail "write should be denied by PKRU"
      | exception Mm.Fault _ -> ())

let test_pkru_checked_on_tlb_hit () =
  (* The whole point of MPK: a PKRU change takes effect immediately, even
     for translations already cached in the TLB. *)
  let kernel, asp = setup () in
  in_sim ~ncpus:2 (fun () ->
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.pkey_mprotect asp ~addr ~len:page ~perm:Perm.rw ~key:7;
      Mm.touch asp ~vaddr:addr ~write:true (* TLB now caches the entry *);
      Kernel.wrpkru kernel ~cpu:0 ~key:7 ~deny_access:true ~deny_write:true;
      match Mm.touch asp ~vaddr:addr ~write:false with
      | () -> Alcotest.fail "TLB hit must still honour PKRU"
      | exception Mm.Fault _ -> ())

let test_pkru_per_cpu () =
  let kernel, asp = setup () in
  (* Deny key 4 on cpu 0 only; cpu 1 can still access. *)
  in_sim ~ncpus:2 ~cpu:0 (fun () ->
      let addr = Mm_compat.mmap asp ~addr:0x4000_0000 ~len:page ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm.pkey_mprotect asp ~addr ~len:page ~perm:Perm.rw ~key:4;
      Kernel.wrpkru kernel ~cpu:0 ~key:4 ~deny_access:true ~deny_write:true);
  let cpu0_denied =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        Mm.timer_tick asp;
        match Mm.touch asp ~vaddr:0x4000_0000 ~write:false with
        | () -> false
        | exception Mm.Fault _ -> true)
  in
  let cpu1_allowed =
    in_sim ~ncpus:2 ~cpu:1 (fun () ->
        Mm.timer_tick asp;
        match Mm.touch asp ~vaddr:0x4000_0000 ~write:false with
        | () -> true
        | exception Mm.Fault _ -> false)
  in
  check Alcotest.bool "cpu0 denied" true cpu0_denied;
  check Alcotest.bool "cpu1 allowed" true cpu1_allowed

let test_mpk_rejected_on_riscv () =
  let kernel = Kernel.create ~isa:Mm_hal.Isa.riscv_sv48 ~ncpus:1 () in
  let asp = Addr_space.create kernel Config.adv in
  in_sim (fun () ->
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Alcotest.(check bool)
        "pkey_mprotect raises on RISC-V" true
        (try
           Mm.pkey_mprotect asp ~addr ~len:page ~perm:Perm.rw ~key:1;
           false
         with Invalid_argument _ -> true))

let () =
  Alcotest.run "mpk"
    [
      ( "pkru",
        [
          Alcotest.test_case "default allows" `Quick test_key_allows_by_default;
          Alcotest.test_case "deny access" `Quick test_pkru_denies_access;
          Alcotest.test_case "deny write only" `Quick
            test_pkru_write_only_denial;
          Alcotest.test_case "checked on TLB hit" `Quick
            test_pkru_checked_on_tlb_hit;
          Alcotest.test_case "per-cpu registers" `Quick test_pkru_per_cpu;
          Alcotest.test_case "rejected on RISC-V" `Quick
            test_mpk_rejected_on_riscv;
        ] );
    ]
