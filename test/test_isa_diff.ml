(* Cross-ISA differential tests: the same operation sequence must produce
   identical user-visible behaviour on x86-64, RISC-V Sv48 and ARMv8 —
   only the raw PTE encodings (and ARM's break-before-make cost) differ.
   This is the executable form of the paper's portability claim (§3.5):
   nothing above the HAL changes across ISAs. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096

let isas = [ Mm_hal.Isa.x86_64; Mm_hal.Isa.riscv_sv48; Mm_hal.Isa.arm64 ]

let in_sim f =
  let w = Engine.create ~ncpus:1 in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

(* Run a scripted workload and return its observable trace: statuses
   (shape only — pfns differ), values, fault outcomes. *)
let observable_trace isa =
  in_sim (fun () ->
      let kernel = Kernel.create ~isa ~ncpus:1 () in
      let asp = Addr_space.create kernel Config.adv in
      let log = Buffer.create 256 in
      let obs fmt = Printf.ksprintf (fun s -> Buffer.add_string log (s ^ ";")) fmt in
      let a = Mm_compat.mmap asp ~addr:0x4000_0000 ~len:(16 * page) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:a ~value:11;
      obs "w11";
      obs "r%d" (Mm.read_value asp ~vaddr:a);
      Mm_compat.mprotect asp ~addr:a ~len:(16 * page) ~perm:Perm.r;
      (match Mm.page_fault asp ~vaddr:a ~write:true with
      | Mm.Sigsegv -> obs "segv"
      | Mm.Handled -> obs "handled");
      Mm_compat.mprotect asp ~addr:a ~len:(16 * page) ~perm:Perm.rw;
      let child = Mm.fork asp in
      Mm.write_value child ~vaddr:a ~value:22;
      obs "parent=%d child=%d" (Mm.read_value asp ~vaddr:a)
        (Mm.read_value child ~vaddr:a);
      let dev = Blockdev.create ~name:"swap" () in
      Mm.write_value asp ~vaddr:(a + page) ~value:33;
      ignore (Mm.swap_out asp ~vaddr:(a + page) ~dev);
      obs "swapback=%d" (Mm.read_value asp ~vaddr:(a + page));
      Mm_compat.munmap asp ~addr:a ~len:(8 * page);
      Addr_space.with_lock asp ~lo:a ~hi:(a + (16 * page)) (fun c ->
          for i = 0 to 15 do
            obs "%s"
              (match Addr_space.query c (a + (i * page)) with
              | Status.Invalid -> "I"
              | Status.Mapped _ -> "M"
              | Status.Private_anon _ -> "A"
              | Status.Swapped _ -> "S"
              | Status.Private_file _ -> "F"
              | Status.Shared_anon _ -> "H")
          done);
      Addr_space.check_well_formed asp;
      Addr_space.check_well_formed child;
      Buffer.contents log)

let test_same_behaviour_everywhere () =
  match List.map observable_trace isas with
  | [ x86; riscv; arm ] ->
    check Alcotest.string "riscv == x86" x86 riscv;
    check Alcotest.string "arm == x86" x86 arm
  | _ -> assert false

let test_exhaustive_on_every_isa () =
  (* The full P2 depth-2 exhaustive check runs under each PTE codec:
     functional correctness must be ISA-independent. *)
  List.iter
    (fun isa ->
      let r =
        Mm_verif.Funcheck.exhaustive ~isa ~cfg:Cortenmm.Config.adv ~depth:2 ()
      in
      check Alcotest.int
        (isa.Mm_hal.Isa.name ^ ": no failures")
        0
        (List.length r.Mm_verif.Funcheck.failures))
    isas

let test_arm_bbm_costs_more () =
  (* The same mprotect of live pages costs more on ARM: each rewrite
     breaks (invalid write + TLB invalidate) before making. *)
  let cost isa =
    in_sim (fun () ->
        let kernel = Kernel.create ~isa ~ncpus:1 () in
        let asp = Addr_space.create kernel Config.adv in
        let a = Mm_compat.mmap asp ~addr:0x4000_0000 ~len:(32 * page) ~perm:Perm.rw () in
        Mm.touch_range asp ~addr:a ~len:(32 * page) ~write:true;
        let t0 = Engine.now () in
        Mm_compat.mprotect asp ~addr:a ~len:(32 * page) ~perm:Perm.r;
        Engine.now () - t0)
  in
  let x86 = cost Mm_hal.Isa.x86_64 in
  let arm = cost Mm_hal.Isa.arm64 in
  check Alcotest.bool
    (Printf.sprintf "arm (%d) > x86 (%d)" arm x86)
    true (arm > x86);
  (* The difference is exactly the per-page break cost. *)
  check Alcotest.int "delta = 32 breaks"
    (32 * (Mm_sim.Cost.tlb_flush_page + Mm_sim.Cost.pte_write + Mm_sim.Cost.cache_hit))
    (arm - x86)

let test_bbm_flags () =
  check Alcotest.bool "x86 no BBM" false
    (Mm_hal.Isa.needs_break_before_make Mm_hal.Isa.x86_64);
  check Alcotest.bool "riscv no BBM" false
    (Mm_hal.Isa.needs_break_before_make Mm_hal.Isa.riscv_sv48);
  check Alcotest.bool "arm BBM" true
    (Mm_hal.Isa.needs_break_before_make Mm_hal.Isa.arm64)

let test_microbench_runs_on_all_isas () =
  List.iter
    (fun isa ->
      match
        Mm_workloads.Micro.run ~isa
          ~kind:(Mm_workloads.System.Corten Config.adv) ~ncpus:2
          ~bench:Mm_workloads.Micro.Mmap_pf ~contention:Mm_workloads.Micro.Low
          ~iters:10 ()
      with
      | Some r ->
        check Alcotest.bool
          (isa.Mm_hal.Isa.name ^ " runs")
          true
          (r.Mm_workloads.Runner.ops_per_sec > 0.0)
      | None -> Alcotest.fail "unsupported")
    isas

let () =
  Alcotest.run "isa-differential"
    [
      ( "portability",
        [
          Alcotest.test_case "same behaviour on all ISAs" `Quick
            test_same_behaviour_everywhere;
          Alcotest.test_case "exhaustive P2 on every ISA" `Quick
            test_exhaustive_on_every_isa;
          Alcotest.test_case "microbench on all ISAs" `Quick
            test_microbench_runs_on_all_isas;
        ] );
      ( "break-before-make",
        [
          Alcotest.test_case "flags" `Quick test_bbm_flags;
          Alcotest.test_case "ARM rewrites cost more" `Quick
            test_arm_bbm_costs_more;
        ] );
    ]
