(* Tests for the pager layer and reclaim under pressure: provider
   round-trips through [Pager.ops], mlock wiring surviving forced
   page-out storms, reclaim racing COW fork, and the RLIMIT_MEMLOCK
   accounting — the wired/value-model guarantees behind [Pageoutd]. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
module Errno = Mm_hal.Errno
module Frame = Mm_phys.Frame
module Phys = Mm_phys.Phys

let check = Alcotest.check
let page = 4096

(* Run [f] on cpu 0 of a fresh simulation and return its result. *)
let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let make_asp ?(ncpus = 1) ?(cfg = Config.adv) () =
  let kernel = Kernel.create ~ncpus () in
  (kernel, Addr_space.create kernel cfg)

let both_protocols f () = List.iter (fun cfg -> f cfg) [ Config.adv; Config.rw ]

let proto_case name f =
  Alcotest.test_case name `Quick (both_protocols (fun cfg -> f cfg))

let status_at asp vaddr =
  Addr_space.with_lock asp ~lo:vaddr ~hi:(vaddr + page) (fun c ->
      Addr_space.query c vaddr)

(* -- Provider round-trips through the ops record -- *)

let test_anon_pager_roundtrip () =
  in_sim (fun () ->
      let phys = Phys.create () in
      let dev = Blockdev.create ~name:"swap-rt" () in
      let p = Vm_object.pager ~dev ~phys in
      check Alcotest.string "provider name" "anon" p.Pager.name;
      match p.Pager.put_pages [ (0, 4242) ] with
      | [ block ] ->
        check Alcotest.bool "swap block present" true
          (p.Pager.has_page ~page_index:block);
        let frame = p.Pager.get_page ~page_index:block in
        check Alcotest.int "contents survive the round-trip" 4242
          frame.Frame.contents;
        check Alcotest.bool "block freed after swap-in" false
          (p.Pager.has_page ~page_index:block);
        Phys.free phys frame
      | blocks -> Alcotest.failf "expected one block, got %d" (List.length blocks))

let test_file_pager_roundtrip () =
  in_sim (fun () ->
      List.iter
        (fun (file, expect_name) ->
          let phys = Phys.create () in
          let p = File.pager file phys in
          check Alcotest.string "provider name" expect_name p.Pager.name;
          let f = p.Pager.get_page ~page_index:1 in
          f.Frame.contents <- 777;
          (match p.Pager.put_pages [ (1, 777) ] with
          | [ 1 ] -> ()
          | _ -> Alcotest.fail "file pager must keep its page index");
          File.drop_page file phys ~page_index:1;
          check Alcotest.bool "disk copy survives the drop" true
            (p.Pager.has_page ~page_index:1);
          let f' = p.Pager.get_page ~page_index:1 in
          check Alcotest.int "refault reads the written-back token" 777
            f'.Frame.contents;
          p.Pager.dealloc ())
        [
          (File.regular ~name:"rt.dat" ~size:(16 * page), "file");
          (File.shm ~size:(16 * page), "shm");
        ])

(* -- Wired pages survive a forced full-pressure storm -- *)

let test_wired_survive_storm cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let dev = Blockdev.create ~name:"swap-storm" () in
      let d = Pageoutd.create kernel ~dev () in
      Pageoutd.register_space d asp;
      let npages = 16 and wired = 8 in
      let addr = Mm_compat.mmap asp ~len:(npages * page) ~perm:Perm.rw () in
      for i = 0 to npages - 1 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(100 + i)
      done;
      Mm_compat.mlock asp ~addr ~len:(wired * page);
      let reclaimed = Pageoutd.pressure d ~target_pages:(4 * npages) in
      check Alcotest.bool "storm reclaimed something" true (reclaimed > 0);
      (* Wired pages must still be resident after the storm... *)
      for i = 0 to wired - 1 do
        match status_at asp (addr + (i * page)) with
        | Status.Mapped _ -> ()
        | s ->
          Alcotest.failf "wired page %d lost residency: %s" i
            (Status.to_string s)
      done;
      (* ...while at least one unwired page was pushed to swap. *)
      let evicted = ref 0 in
      for i = wired to npages - 1 do
        match status_at asp (addr + (i * page)) with
        | Status.Swapped _ -> incr evicted
        | _ -> ()
      done;
      check Alcotest.bool "unwired pages evicted" true (!evicted > 0);
      (* Every token survives: wired in place, evicted via refault. *)
      for i = 0 to npages - 1 do
        check Alcotest.int "token survives the storm" (100 + i)
          (Mm.read_value asp ~vaddr:(addr + (i * page)))
      done;
      Mm_compat.munlock asp ~addr ~len:(wired * page);
      check Alcotest.int "wired accounting drains" 0 (Kernel.wired_pages kernel);
      Addr_space.check_well_formed asp)

(* -- Reclaim racing COW fork on the shadow chain -- *)

let test_reclaim_vs_cow_fork cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let dev = Blockdev.create ~name:"swap-cow" () in
      let d = Pageoutd.create kernel ~dev () in
      Pageoutd.register_space d asp;
      let npages = 8 in
      let addr = Mm_compat.mmap asp ~len:(npages * page) ~perm:Perm.rw () in
      for i = 0 to npages - 1 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(1000 + i)
      done;
      let child = Mm.fork asp in
      Pageoutd.register_space d child;
      let _ = Pageoutd.pressure d ~target_pages:(4 * npages) in
      (* Parent COW-breaks every page with fresh tokens while the
         pre-fork frames sit on swap... *)
      for i = 0 to npages - 1 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(2000 + i)
      done;
      (* ...the child must still observe the pre-fork values, and the
         parent its overwrites — the (proc, id, page) value model. *)
      for i = 0 to npages - 1 do
        check Alcotest.int "child sees pre-fork token" (1000 + i)
          (Mm.read_value child ~vaddr:(addr + (i * page)));
        check Alcotest.int "parent sees its overwrite" (2000 + i)
          (Mm.read_value asp ~vaddr:(addr + (i * page)))
      done;
      Pageoutd.unregister_space d child;
      Mm.destroy child;
      Addr_space.check_well_formed asp)

(* -- RLIMIT_MEMLOCK: EPERM beyond the limit, balanced accounting -- *)

let test_mlock_limit cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      Kernel.set_wired_limit kernel ~pages:4;
      let addr = Mm_compat.mmap asp ~len:(8 * page) ~perm:Perm.rw () in
      (match Mm.mlock_r asp ~addr ~len:(8 * page) with
      | Error Errno.EPERM -> ()
      | Ok () -> Alcotest.fail "mlock beyond RLIMIT_MEMLOCK must fail"
      | Error e -> Alcotest.failf "expected EPERM, got %s" (Errno.to_string e));
      (match Mm.mlock_r asp ~addr:0x7000_0000 ~len:page with
      | Error Errno.ENOMEM -> ()
      | _ -> Alcotest.fail "mlock over an unmapped range must be ENOMEM");
      (match Mm.mlock_r asp ~addr ~len:(4 * page) with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "mlock within the limit: %s" (Errno.to_string e));
      check Alcotest.int "wired accounting" 4 (Kernel.wired_pages kernel);
      Mm_compat.munlock asp ~addr ~len:(4 * page);
      check Alcotest.int "unwired accounting" 0 (Kernel.wired_pages kernel))

(* -- File page-out: writeback precedes the drop, refaults see data -- *)

let test_file_reclaim_writeback cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let dev = Blockdev.create ~name:"swap-file" () in
      let d = Pageoutd.create kernel ~dev () in
      Pageoutd.register_space d asp;
      let file = File.shm ~size:(4 * page) in
      Pageoutd.register_file d file;
      let addr =
        Mm_compat.mmap asp ~len:(4 * page) ~perm:Perm.rw
          ~backing:(Mm.Shared (file, 0)) ()
      in
      for i = 0 to 3 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(300 + i)
      done;
      let reclaimed = Pageoutd.pressure d ~target_pages:16 in
      check Alcotest.bool "cache pages reclaimed" true (reclaimed > 0);
      let stats = Pageoutd.stats d in
      check Alcotest.bool "dirty pages written back before the drop" true
        (stats.Pageoutd.file_written_back > 0);
      check Alcotest.bool "cache frames dropped" true
        (stats.Pageoutd.file_dropped > 0);
      (* Refault through the pager: the written-back tokens come back. *)
      for i = 0 to 3 do
        check Alcotest.int "token survives the page-out" (300 + i)
          (Mm.read_value asp ~vaddr:(addr + (i * page)))
      done;
      Addr_space.check_well_formed asp)

let () =
  Alcotest.run "reclaim"
    [
      ( "pager",
        [
          Alcotest.test_case "anon round-trip" `Quick test_anon_pager_roundtrip;
          Alcotest.test_case "file/shm round-trip" `Quick
            test_file_pager_roundtrip;
        ] );
      ( "pressure",
        [
          proto_case "wired pages survive a storm" test_wired_survive_storm;
          proto_case "reclaim racing COW fork" test_reclaim_vs_cow_fork;
          proto_case "RLIMIT_MEMLOCK accounting" test_mlock_limit;
          proto_case "file writeback before drop" test_file_reclaim_writeback;
        ] );
    ]
