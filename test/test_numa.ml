(* Tests for the NUMA policy extension (the paper's §4.5 future work):
   policies stored in the per-PTE metadata, consulted by the fault path,
   inherited across splits and fork, and rewritten by mbind. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let kib n = n * 1024

let in_sim ?(ncpus = 1) ~cpu f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let node_of kernel asp addr =
  match
    Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
        Addr_space.query c addr)
  with
  | Status.Mapped { pfn; _ } ->
    Mm_phys.Phys.node_of_pfn kernel.Kernel.phys pfn
  | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s)

let test_choose () =
  check Alcotest.int "default is local" 1
    (Numa.choose ~policy:Numa.Default ~local_node:1 ~vpn:0 ~nnodes:2);
  check Alcotest.int "bind" 0
    (Numa.choose ~policy:(Numa.Bind 0) ~local_node:1 ~vpn:5 ~nnodes:2);
  check Alcotest.int "bind out of range falls back" 1
    (Numa.choose ~policy:(Numa.Bind 7) ~local_node:1 ~vpn:0 ~nnodes:2);
  check Alcotest.int "interleave vpn 0" 0
    (Numa.choose ~policy:(Numa.Interleave [ 0; 1 ]) ~local_node:0 ~vpn:0
       ~nnodes:2);
  check Alcotest.int "interleave vpn 1" 1
    (Numa.choose ~policy:(Numa.Interleave [ 0; 1 ]) ~local_node:0 ~vpn:1
       ~nnodes:2)

let test_node_of_cpu () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:8 () in
  check Alcotest.int "cpu0 -> node0" 0 (Kernel.node_of_cpu kernel ~cpu:0);
  check Alcotest.int "cpu3 -> node0" 0 (Kernel.node_of_cpu kernel ~cpu:3);
  check Alcotest.int "cpu4 -> node1" 1 (Kernel.node_of_cpu kernel ~cpu:4);
  check Alcotest.int "cpu7 -> node1" 1 (Kernel.node_of_cpu kernel ~cpu:7)

let test_default_allocates_local () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:4 () in
  let asp = Addr_space.create kernel Config.adv in
  (* cpu 3 is on node 1: its faults must land on node 1. *)
  let node =
    in_sim ~ncpus:4 ~cpu:3 (fun () ->
        let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
        Mm.touch asp ~vaddr:addr ~write:true;
        node_of kernel asp addr)
  in
  check Alcotest.int "local allocation" 1 node

let test_bind_policy () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:4 () in
  let asp = Addr_space.create kernel Config.adv in
  let node =
    in_sim ~ncpus:4 ~cpu:3 (fun () ->
        let addr =
          Mm_compat.mmap asp ~policy:(Numa.Bind 0) ~len:(kib 16) ~perm:Perm.rw ()
        in
        Mm.touch asp ~vaddr:addr ~write:true;
        node_of kernel asp addr)
  in
  check Alcotest.int "bound to node 0 despite faulting on node 1" 0 node

let test_interleave_policy () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let nodes =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        let addr =
          Mm_compat.mmap asp
            ~policy:(Numa.Interleave [ 0; 1 ])
            ~len:(kib 16) ~perm:Perm.rw ()
        in
        Mm.touch_range asp ~addr ~len:(kib 16) ~write:true;
        List.init 4 (fun i -> node_of kernel asp (addr + (i * page))))
  in
  (* Consecutive pages alternate between the nodes. *)
  (match nodes with
  | [ a; b; c; d ] ->
    check Alcotest.bool "alternating" true (a <> b && b <> c && c <> d)
  | _ -> Alcotest.fail "expected 4 pages");
  check Alcotest.int "both nodes used" 2
    (List.length (List.sort_uniq compare nodes))

let test_mbind_rewrites () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let node =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
        (* Rebind before faulting: pages must follow the new policy. *)
        Mm.mbind asp ~addr ~len:(kib 16) ~policy:(Numa.Bind 1);
        Mm.touch asp ~vaddr:addr ~write:true;
        node_of kernel asp addr)
  in
  check Alcotest.int "mbind redirected allocation" 1 node

let test_mbind_does_not_migrate () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let node =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
        Mm.touch asp ~vaddr:addr ~write:true (* resident on node 0 *);
        Mm.mbind asp ~addr ~len:page ~policy:(Numa.Bind 1);
        node_of kernel asp addr)
  in
  check Alcotest.int "resident page not migrated" 0 node

let test_policy_survives_split () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let node =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        (* A 2 MiB-aligned bound mark stored at an upper level; punching a
           hole pushes it down — the policy must survive the split. *)
        let addr = 1 lsl 30 in
        let len = 2 * 1024 * 1024 in
        ignore
          (Mm_compat.mmap asp ~addr ~policy:(Numa.Bind 1) ~len ~perm:Perm.rw ());
        Mm_compat.munmap asp ~addr:(addr + (64 * page)) ~len:page;
        Mm.touch asp ~vaddr:addr ~write:true;
        node_of kernel asp addr)
  in
  check Alcotest.int "policy survived push-down" 1 node

let test_policy_survives_fork () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let node =
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        let addr =
          Mm_compat.mmap asp ~policy:(Numa.Bind 1) ~len:(kib 16) ~perm:Perm.rw ()
        in
        let child = Mm.fork asp in
        Mm.touch child ~vaddr:addr ~write:true;
        node_of kernel child addr)
  in
  check Alcotest.int "child inherits policy" 1 node

let test_remote_alloc_costs_more () =
  let time ~policy =
    let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
    let asp = Addr_space.create kernel Config.adv in
    in_sim ~ncpus:2 ~cpu:0 (fun () ->
        let addr = Mm_compat.mmap asp ~policy ~len:(kib 64) ~perm:Perm.rw () in
        let t0 = Engine.now () in
        Mm.touch_range asp ~addr ~len:(kib 64) ~write:true;
        Engine.now () - t0)
  in
  let local = time ~policy:(Numa.Bind 0) in
  let remote = time ~policy:(Numa.Bind 1) in
  check Alcotest.bool
    (Printf.sprintf "remote faults cost more (%d vs %d)" remote local)
    true (remote > local)

let test_per_node_accounting () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  in_sim ~ncpus:2 ~cpu:0 (fun () ->
      let addr =
        Mm_compat.mmap asp ~policy:(Numa.Bind 1) ~len:(kib 16) ~perm:Perm.rw ()
      in
      Mm.touch_range asp ~addr ~len:(kib 16) ~write:true;
      (* All four frames must have come from node 1's pfn stripe. *)
      for i = 0 to 3 do
        let n = node_of kernel asp (addr + (i * page)) in
        check Alcotest.int "frame on node 1" 1 n
      done)

let () =
  Alcotest.run "numa"
    [
      ( "policy",
        [
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "node_of_cpu" `Quick test_node_of_cpu;
        ] );
      ( "fault-path",
        [
          Alcotest.test_case "default is local" `Quick
            test_default_allocates_local;
          Alcotest.test_case "bind" `Quick test_bind_policy;
          Alcotest.test_case "interleave" `Quick test_interleave_policy;
          Alcotest.test_case "remote costs more" `Quick
            test_remote_alloc_costs_more;
          Alcotest.test_case "per-node accounting" `Quick
            test_per_node_accounting;
        ] );
      ( "mbind",
        [
          Alcotest.test_case "rewrites policy" `Quick test_mbind_rewrites;
          Alcotest.test_case "no migration" `Quick test_mbind_does_not_migrate;
        ] );
      ( "inheritance",
        [
          Alcotest.test_case "survives push-down" `Quick
            test_policy_survives_split;
          Alcotest.test_case "survives fork" `Quick test_policy_survives_fork;
        ] );
    ]
