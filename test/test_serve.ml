(* The open-loop serving mode: registry error paths, seed determinism
   (equal seeds give byte-identical reports, different seeds different
   arrival orders), the batched policy's measurable effect on a
   broadcast-shootdown backend's tail, its non-effect on CortenMM's
   precise targeting, and oracle consistency of a batched world. *)

module Serve = Mm_serve.Serve
module Mix = Mm_serve.Mix
module Tlb = Mm_tlb.Tlb
module System = Mm_workloads.System
module Trace = Mm_workloads.Trace
module Diff = Mm_workloads.Diff
module Json = Mm_obs.Json

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -- Registries -- *)

let test_mix_registry () =
  (match Mix.find "mixed" with
  | Ok m -> check Alcotest.string "found" "mixed" m.Mix.name
  | Error msg -> Alcotest.failf "mixed should resolve: %s" msg);
  match Mix.find "bogus" with
  | Ok _ -> Alcotest.fail "bogus mix resolved"
  | Error msg ->
    List.iter
      (fun name ->
        check Alcotest.bool
          (Printf.sprintf "error lists %s" name)
          true
          (contains ~needle:name msg))
      Mix.names

let test_policy_registry () =
  (match Serve.find_policy "immediate" with
  | Ok Tlb.Immediate -> ()
  | Ok _ -> Alcotest.fail "immediate resolved to the wrong policy"
  | Error msg -> Alcotest.failf "immediate should resolve: %s" msg);
  (match Serve.find_policy "batched" with
  | Ok (Tlb.Batched _) -> ()
  | Ok _ -> Alcotest.fail "batched resolved to the wrong policy"
  | Error msg -> Alcotest.failf "batched should resolve: %s" msg);
  match Serve.find_policy "bogus" with
  | Ok _ -> Alcotest.fail "bogus policy resolved"
  | Error msg ->
    List.iter
      (fun name ->
        check Alcotest.bool
          (Printf.sprintf "error lists %s" name)
          true
          (contains ~needle:name msg))
      Serve.policy_names

(* -- Determinism -- *)

let run_json ~seed =
  let mix = Mix.short in
  let systems =
    [ Result.get_ok (System.Registry.find "linux");
      Result.get_ok (System.Registry.find "cortenmm-adv") ]
  in
  let reports =
    Serve.run_matrix ~systems ~mix ~policies:Serve.policies ~ncpus:4
      ~sessions:400 ~seed ()
  in
  Json.to_string (Serve.report_json ~mix ~ncpus:4 ~sessions:400 ~seed reports)

let test_same_seed_byte_identical () =
  check Alcotest.string "equal seeds, byte-identical JSON" (run_json ~seed:42)
    (run_json ~seed:42)

let test_different_seed_differs () =
  check Alcotest.bool "different seeds, different reports" false
    (String.equal (run_json ~seed:42) (run_json ~seed:43))

(* -- The fork_fleet mix -- *)

let run_fleet_json ~seed =
  let mix = Mix.fork_fleet in
  let systems =
    [ Result.get_ok (System.Registry.find "linux");
      Result.get_ok (System.Registry.find "cortenmm-adv") ]
  in
  let reports =
    Serve.run_matrix ~systems ~mix ~policies:Serve.policies ~ncpus:2
      ~sessions:120 ~seed ()
  in
  ( reports,
    Json.to_string
      (Serve.report_json ~mix ~ncpus:2 ~sessions:120 ~seed reports) )

(* Every fork_fleet session forks exactly once and COW-breaks the hot
   pages; the fork histogram must carry one sample per session and the
   whole report must be byte-stable across reruns (the -j gate in
   check.sh covers cross-domain determinism on top). *)
let test_fork_fleet_forks_every_session () =
  let reports, j1 = run_fleet_json ~seed:42 in
  let _, j2 = run_fleet_json ~seed:42 in
  check Alcotest.string "equal seeds, byte-identical JSON" j1 j2;
  List.iter
    (fun (r : Serve.report) ->
      check Alcotest.int
        (Printf.sprintf "%s/%s: one fork per session" r.Serve.r_system
           r.Serve.r_policy)
        r.Serve.r_sessions r.Serve.r_fork.Serve.s_count;
      check Alcotest.bool
        (Printf.sprintf "%s/%s: forks cost cycles" r.Serve.r_system
           r.Serve.r_policy)
        true
        (r.Serve.r_fork.Serve.s_p50 > 0))
    reports

(* Non-fork mixes must not fork: their histogram stays empty, so the
   pre-fleet report shape is unchanged. *)
let test_short_mix_never_forks () =
  let e = Result.get_ok (System.Registry.find "linux") in
  let r =
    Serve.run ~backend:e.System.Registry.r_backend ~mix:Mix.short
      ~policy_name:"immediate" ~policy:Tlb.Immediate ~ncpus:2 ~sessions:60
      ~seed:7 ()
  in
  check Alcotest.int "no fork samples" 0 r.Serve.r_fork.Serve.s_count

(* -- The batched policy's effect -- *)

let run_one ~system ~policy_name ~sessions =
  let e = Result.get_ok (System.Registry.find system) in
  let policy = Result.get_ok (Serve.find_policy policy_name) in
  Serve.run
    ~backend:e.System.Registry.r_backend ~mix:Mix.mixed ~policy_name ~policy
    ~ncpus:4 ~sessions ~seed:42 ()

(* Linux broadcasts synchronous IPIs on every unmap: deferral coalesces
   them (fewer IPIs, bounded worst stall) and the shorter lock holds pull
   the open-loop session tail down. *)
let test_batched_moves_linux_tail () =
  let imm = run_one ~system:"linux" ~policy_name:"immediate" ~sessions:1000
  and bat = run_one ~system:"linux" ~policy_name:"batched" ~sessions:1000 in
  check Alcotest.bool
    (Printf.sprintf "fewer ipis (%d < %d)" bat.Serve.r_ipis imm.Serve.r_ipis)
    true
    (bat.Serve.r_ipis < imm.Serve.r_ipis);
  check Alcotest.bool "immediate never stalls a free" true
    (imm.Serve.r_worst_stall = 0 && imm.Serve.r_batched = 0);
  check Alcotest.bool "batched defers and stalls" true
    (bat.Serve.r_batched > 0 && bat.Serve.r_worst_stall > 0
    && bat.Serve.r_batch_flushes > 0);
  check Alcotest.bool
    (Printf.sprintf "session p99 moved (%d < %d)" bat.Serve.r_session.Serve.s_p99
       imm.Serve.r_session.Serve.s_p99)
    true
    (bat.Serve.r_session.Serve.s_p99 < imm.Serve.r_session.Serve.s_p99)

(* CortenMM's per-core VA + precise target tracking leaves (almost) no
   remote CPU to shoot down for private sessions, so there is nothing
   for the batch to coalesce — the asymmetry that makes the comparison
   interesting. *)
let test_corten_unaffected () =
  let imm =
    run_one ~system:"cortenmm-adv" ~policy_name:"immediate" ~sessions:400
  and bat =
    run_one ~system:"cortenmm-adv" ~policy_name:"batched" ~sessions:400
  in
  check Alcotest.int "no IPIs either way" imm.Serve.r_ipis bat.Serve.r_ipis;
  check Alcotest.int "identical p50" imm.Serve.r_session.Serve.s_p50
    bat.Serve.r_session.Serve.s_p50

(* -- Oracle consistency of a batched world --

   Replaying one trace on a batched CortenMM and the stock backends must
   produce identical observable state: deferral changes when remote TLBs
   flush and frames free, never what the address space maps. *)

let test_oracle_batched_consistent () =
  let corten_batched =
    Serve.with_policy ~policy:Serve.batched_default
      (System.backend_of_kind (System.Corten Cortenmm.Config.adv))
  in
  let linux_batched =
    Serve.with_policy ~policy:Serve.batched_default
      (System.backend_of_kind System.Linux)
  in
  let stock = System.backend_of_kind System.Linux in
  let trace =
    Trace.generate ~profile:Trace.Mixed ~ncpus:4 ~ops_per_cpu:120 ~seed:42
  in
  match
    Diff.run ~check_every:8
      ~backends:[ stock; corten_batched; linux_batched ]
      trace
  with
  | Ok n -> check Alcotest.bool "checked some ops" true (n > 0)
  | Error d -> Alcotest.failf "batched world diverged: %s" (Diff.describe d)

let () =
  Alcotest.run "mm_serve"
    [
      ( "registry",
        [
          Alcotest.test_case "mix lookup errors" `Quick test_mix_registry;
          Alcotest.test_case "policy lookup errors" `Quick
            test_policy_registry;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed byte-identical" `Quick
            test_same_seed_byte_identical;
          Alcotest.test_case "different seed differs" `Quick
            test_different_seed_differs;
        ] );
      ( "fork_fleet",
        [
          Alcotest.test_case "one fork per session, byte-stable" `Quick
            test_fork_fleet_forks_every_session;
          Alcotest.test_case "non-fork mixes never fork" `Quick
            test_short_mix_never_forks;
        ] );
      ( "policy",
        [
          Alcotest.test_case "batched moves the linux tail" `Quick
            test_batched_moves_linux_tail;
          Alcotest.test_case "cortenmm unaffected" `Quick
            test_corten_unaffected;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "batched world consistent" `Quick
            test_oracle_batched_consistent;
        ] );
    ]
