(* Tests for mremap (move/grow/shrink) and madvise(MADV_DONTNEED). *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let kib n = n * 1024

let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let make_asp ?(cfg = Config.adv) () =
  let kernel = Kernel.create ~ncpus:1 () in
  (kernel, Addr_space.create kernel cfg)

let status_at asp addr =
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
      Addr_space.query c addr)

(* -- mremap -- *)

let test_mremap_grow_moves_data () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      for i = 0 to 3 do
        Mm.write_value asp ~vaddr:(a + (i * page)) ~value:(500 + i)
      done;
      let b = Mm.mremap asp ~addr:a ~old_len:(kib 16) ~new_len:(kib 64) in
      check Alcotest.bool "moved" true (b <> a);
      (* Data moved with the pages, no copy. *)
      for i = 0 to 3 do
        check Alcotest.int
          (Printf.sprintf "page %d data" i)
          (500 + i)
          (Mm.read_value asp ~vaddr:(b + (i * page)))
      done;
      (* The old range is gone. *)
      (match status_at asp a with
      | Status.Invalid -> ()
      | s -> Alcotest.failf "old range alive: %s" (Status.to_string s));
      (* The grown tail faults in on demand with the head's protection. *)
      Mm.write_value asp ~vaddr:(b + kib 32) ~value:9;
      check Alcotest.int "tail writable" 9 (Mm.read_value asp ~vaddr:(b + kib 32));
      Addr_space.check_well_formed asp)

let test_mremap_old_tlb_flushed () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:a ~value:1 (* TLB caches the old vaddr *);
      let _ = Mm.mremap asp ~addr:a ~old_len:(kib 16) ~new_len:(kib 32) in
      Mm.timer_tick asp;
      (* A stale hit on the old address would be a fault-free read. *)
      match Mm.touch asp ~vaddr:a ~write:false with
      | () -> Alcotest.fail "old translation survived the move"
      | exception Mm.Fault _ -> ())

let test_mremap_shrink () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:(kib 64) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr:a ~len:(kib 64) ~write:true;
      let b = Mm.mremap asp ~addr:a ~old_len:(kib 64) ~new_len:(kib 16) in
      check Alcotest.int "shrink in place" a b;
      (match status_at asp (a + kib 16) with
      | Status.Invalid -> ()
      | s -> Alcotest.failf "tail still alive: %s" (Status.to_string s));
      match status_at asp a with
      | Status.Mapped _ -> ()
      | s -> Alcotest.failf "head lost: %s" (Status.to_string s))

let test_mremap_moves_marks_and_swap () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let dev = Blockdev.create ~name:"swap" () in
      let a = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      (* Page 0 resident, page 1 swapped, pages 2-3 unfaulted marks. *)
      Mm.write_value asp ~vaddr:a ~value:1;
      Mm.write_value asp ~vaddr:(a + page) ~value:2;
      ignore (Mm.swap_out asp ~vaddr:(a + page) ~dev);
      let b = Mm.mremap asp ~addr:a ~old_len:(kib 16) ~new_len:(kib 32) in
      check Alcotest.int "resident moved" 1 (Mm.read_value asp ~vaddr:b);
      check Alcotest.int "swap slot moved and faults back" 2
        (Mm.read_value asp ~vaddr:(b + page));
      Mm.write_value asp ~vaddr:(b + (2 * page)) ~value:3;
      check Alcotest.int "mark moved" 3 (Mm.read_value asp ~vaddr:(b + (2 * page)));
      Addr_space.check_well_formed asp)

let test_mremap_preserves_cow () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:a ~value:77;
      let child = Mm.fork asp in
      (* Parent mremaps its COW-shared page. *)
      let b = Mm.mremap asp ~addr:a ~old_len:page ~new_len:(2 * page) in
      check Alcotest.int "parent reads through move" 77
        (Mm.read_value asp ~vaddr:b);
      (* Writing must still break COW, not corrupt the child. *)
      Mm.write_value asp ~vaddr:b ~value:88;
      check Alcotest.int "child unaffected" 77 (Mm.read_value child ~vaddr:a);
      check Alcotest.int "parent sees write" 88 (Mm.read_value asp ~vaddr:b))

(* -- madvise(DONTNEED) -- *)

let test_madvise_drops_frames () =
  in_sim (fun () ->
      let kernel, asp = make_asp () in
      let anon () =
        (Mm_phys.Phys.usage kernel.Kernel.phys).Mm_phys.Phys.anon_bytes
      in
      let a = Mm_compat.mmap asp ~len:(kib 64) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr:a ~len:(kib 64) ~write:true;
      let resident = anon () in
      Mm.madvise_dontneed asp ~addr:a ~len:(kib 64);
      check Alcotest.bool "frames dropped" true (anon () < resident);
      (* The region is still allocated: refaults read zeroes. *)
      check Alcotest.int "refault zero-filled" 0 (Mm.read_value asp ~vaddr:a);
      Addr_space.check_well_formed asp)

let test_madvise_data_gone () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:a ~value:123;
      Mm.madvise_dontneed asp ~addr:a ~len:page;
      check Alcotest.int "data discarded" 0 (Mm.read_value asp ~vaddr:a);
      (* Still writable afterwards. *)
      Mm.write_value asp ~vaddr:a ~value:5;
      check Alcotest.int "writable" 5 (Mm.read_value asp ~vaddr:a))

let test_madvise_spares_files () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let file = File.regular ~name:"data" ~size:(kib 16) in
      let a =
        Mm_compat.mmap asp ~backing:(Mm.File_private (file, 0)) ~len:(kib 16)
          ~perm:Perm.r ()
      in
      let v = Mm.read_value asp ~vaddr:a in
      Mm.madvise_dontneed asp ~addr:a ~len:(kib 16);
      (* File-backed pages are left alone by our DONTNEED. *)
      check Alcotest.int "file mapping intact" v (Mm.read_value asp ~vaddr:a))

let test_madvise_cow_safe () =
  in_sim (fun () ->
      let _, asp = make_asp () in
      let a = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:a ~value:42;
      let child = Mm.fork asp in
      Mm.madvise_dontneed asp ~addr:a ~len:page;
      (* The child still sees the shared data; the parent refaults zero
         and can write privately. *)
      check Alcotest.int "child keeps data" 42 (Mm.read_value child ~vaddr:a);
      check Alcotest.int "parent refaults zero" 0 (Mm.read_value asp ~vaddr:a);
      Mm.write_value asp ~vaddr:a ~value:7;
      check Alcotest.int "child still isolated" 42
        (Mm.read_value child ~vaddr:a))

let () =
  Alcotest.run "mremap-madvise"
    [
      ( "mremap",
        [
          Alcotest.test_case "grow moves data" `Quick
            test_mremap_grow_moves_data;
          Alcotest.test_case "old TLB flushed" `Quick
            test_mremap_old_tlb_flushed;
          Alcotest.test_case "shrink" `Quick test_mremap_shrink;
          Alcotest.test_case "marks and swap move" `Quick
            test_mremap_moves_marks_and_swap;
          Alcotest.test_case "COW preserved" `Quick test_mremap_preserves_cow;
        ] );
      ( "madvise",
        [
          Alcotest.test_case "drops frames" `Quick test_madvise_drops_frames;
          Alcotest.test_case "data discarded" `Quick test_madvise_data_gone;
          Alcotest.test_case "files spared" `Quick test_madvise_spares_files;
          Alcotest.test_case "COW safe" `Quick test_madvise_cow_safe;
        ] );
    ]
