(* Exception-style convenience shims over the typed [Mm.*_r] API, shared
   by the test suite.  Tests here only issue requests they expect to
   succeed, so an [Error _] is a test bug and raising is the right
   failure mode. *)

let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

let mmap asp ?addr ?backing ?policy ~len ~perm () =
  ok (Cortenmm.Mm.mmap_r asp ?addr ?backing ?policy ~len ~perm ())

let munmap asp ~addr ~len = ok (Cortenmm.Mm.munmap_r asp ~addr ~len)

let mprotect asp ~addr ~len ~perm =
  ok (Cortenmm.Mm.mprotect_r asp ~addr ~len ~perm)

let msync asp ~file = ok (Cortenmm.Mm.msync_r asp ~file)
let mlock asp ~addr ~len = ok (Cortenmm.Mm.mlock_r asp ~addr ~len)
let munlock asp ~addr ~len = ok (Cortenmm.Mm.munlock_r asp ~addr ~len)
