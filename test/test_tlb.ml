(* Tests for the TLB model and shootdown strategies, plus TLB coherence
   through the full CortenMM stack (no stale writable translations after
   unmap / write-protect). *)

module Engine = Mm_sim.Engine
module Tlb = Mm_tlb.Tlb
module Perm = Mm_hal.Perm

let check = Alcotest.check

let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let test_install_lookup () =
  let t = Tlb.create ~ncpus:2 ~strategy:Tlb.Sync () in
  Tlb.install t ~cpu:0 ~vpn:100 ~pfn:7 ~writable:true ();
  let pfn_at ~cpu ~vpn ~write =
    Option.map fst (Tlb.lookup t ~cpu ~vpn ~write)
  in
  check (Alcotest.option Alcotest.int) "hit" (Some 7)
    (pfn_at ~cpu:0 ~vpn:100 ~write:false);
  check (Alcotest.option Alcotest.int) "write hit" (Some 7)
    (pfn_at ~cpu:0 ~vpn:100 ~write:true);
  check (Alcotest.option Alcotest.int) "other cpu misses" None
    (pfn_at ~cpu:1 ~vpn:100 ~write:false)

let test_readonly_entry_blocks_write () =
  let t = Tlb.create ~ncpus:1 ~strategy:Tlb.Sync () in
  Tlb.install t ~cpu:0 ~vpn:5 ~pfn:9 ~writable:false ();
  check (Alcotest.option Alcotest.int) "read hit" (Some 9)
    (Option.map fst (Tlb.lookup t ~cpu:0 ~vpn:5 ~write:false));
  check (Alcotest.option Alcotest.int) "write miss (COW safety)" None
    (Option.map fst (Tlb.lookup t ~cpu:0 ~vpn:5 ~write:true))

let test_sync_shootdown () =
  in_sim ~ncpus:4 (fun () ->
      let t = Tlb.create ~ncpus:4 ~strategy:Tlb.Sync () in
      for c = 0 to 3 do
        Tlb.install t ~cpu:c ~vpn:42 ~pfn:1 ~writable:true ()
      done;
      let t0 = Engine.now () in
      Tlb.shootdown t ~targets:[| true; true; true; true |] ~vpns:[ 42 ];
      let dt = Engine.now () - t0 in
      (* All CPUs invalidated immediately; initiator paid send + wait. *)
      for c = 0 to 3 do
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "cpu %d invalidated" c)
          None
          (Option.map fst (Tlb.lookup t ~cpu:c ~vpn:42 ~write:false))
      done;
      check Alcotest.bool "initiator waited for acks" true
        (dt >= Mm_sim.Cost.ipi_ack_wait);
      check Alcotest.int "3 IPIs" 3 (Tlb.counters t).Tlb.ipis)

let test_early_ack_cheaper () =
  let cost strategy =
    in_sim ~ncpus:4 (fun () ->
        let t = Tlb.create ~ncpus:4 ~strategy () in
        for c = 0 to 3 do
          Tlb.install t ~cpu:c ~vpn:7 ~pfn:1 ~writable:true ()
        done;
        let t0 = Engine.now () in
        Tlb.shootdown t ~targets:[| true; true; true; true |] ~vpns:[ 7 ];
        Engine.now () - t0)
  in
  check Alcotest.bool "early-ack cheaper than sync" true
    (cost Tlb.Early_ack < cost Tlb.Sync)

let test_latr_defers () =
  in_sim ~ncpus:2 (fun () ->
      let t = Tlb.create ~ncpus:2 ~strategy:Tlb.Latr () in
      Tlb.install t ~cpu:1 ~vpn:9 ~pfn:3 ~writable:true ();
      Tlb.shootdown t ~targets:[| true; true |] ~vpns:[ 9 ];
      (* No IPI; the remote entry survives until the next timer tick. *)
      check Alcotest.int "no IPIs" 0 (Tlb.counters t).Tlb.ipis;
      check (Alcotest.option Alcotest.int) "remote entry still present"
        (Some 3)
        (Option.map fst (Tlb.lookup t ~cpu:1 ~vpn:9 ~write:false));
      check Alcotest.int "pending on cpu1" 1 (Tlb.pending_count t ~cpu:1);
      Tlb.timer_tick t ~cpu:1;
      check (Alcotest.option Alcotest.int) "drained after tick" None
        (Option.map fst (Tlb.lookup t ~cpu:1 ~vpn:9 ~write:false));
      check Alcotest.int "drain counted" 1 (Tlb.counters t).Tlb.latr_drained)

let test_latr_initiator_cheap () =
  let cost strategy =
    in_sim ~ncpus:8 (fun () ->
        let t = Tlb.create ~ncpus:8 ~strategy () in
        let t0 = Engine.now () in
        Tlb.shootdown t
          ~targets:(Array.make 8 true)
          ~vpns:[ 1; 2; 3; 4 ];
        Engine.now () - t0)
  in
  let latr = cost Tlb.Latr and sync = cost Tlb.Sync in
  check Alcotest.bool
    (Printf.sprintf "latr (%d) << sync (%d)" latr sync)
    true
    (latr * 3 < sync)

(* -- Batched/deferred shootdown policy -- *)

let batched ~window ~max_batch = Tlb.Batched { window; max_batch }

let lookup_pfn t ~cpu ~vpn =
  Option.map fst (Tlb.lookup t ~cpu ~vpn ~write:false)

let test_batched_size_trigger () =
  in_sim ~ncpus:4 (fun () ->
      let t =
        Tlb.create
          ~policy:(batched ~window:1_000_000 ~max_batch:3)
          ~ncpus:4 ~strategy:Tlb.Sync ()
      in
      for c = 0 to 3 do
        List.iter
          (fun vpn -> Tlb.install t ~cpu:c ~vpn ~pfn:vpn ~writable:true ())
          [ 1; 2; 3 ]
      done;
      Tlb.shootdown t ~targets:[| false; true; false; false |] ~vpns:[ 1 ];
      Tlb.shootdown t ~targets:[| false; true; false; false |] ~vpns:[ 2 ];
      (* Deferred: the remote entries are stale but present, no IPI yet;
         the initiator's own entries are flushed immediately. *)
      check Alcotest.int "no ipis yet" 0 (Tlb.counters t).Tlb.ipis;
      check Alcotest.int "two records pending" 2 (Tlb.batch_pending t);
      check (Alcotest.option Alcotest.int) "remote entry still present"
        (Some 1) (lookup_pfn t ~cpu:1 ~vpn:1);
      check (Alcotest.option Alcotest.int) "own entry flushed" None
        (lookup_pfn t ~cpu:0 ~vpn:1);
      Tlb.shootdown t ~targets:[| false; true; false; false |] ~vpns:[ 3 ];
      (* The third record fills the batch: one coalesced round reaches the
         single remote CPU once, not three times. *)
      check Alcotest.int "batch empty after flush" 0 (Tlb.batch_pending t);
      check Alcotest.int "one coalesced ipi" 1 (Tlb.counters t).Tlb.ipis;
      check Alcotest.int "flush counted" 1 (Tlb.counters t).Tlb.batch_flushes;
      check Alcotest.int "records counted" 3 (Tlb.counters t).Tlb.batched;
      List.iter
        (fun vpn ->
          check (Alcotest.option Alcotest.int)
            (Printf.sprintf "vpn %d invalidated on cpu1" vpn)
            None (lookup_pfn t ~cpu:1 ~vpn))
        [ 1; 2; 3 ])

let test_batched_window_trigger () =
  in_sim ~ncpus:2 (fun () ->
      let t =
        Tlb.create
          ~policy:(batched ~window:5_000 ~max_batch:100)
          ~ncpus:2 ~strategy:Tlb.Sync ()
      in
      Tlb.install t ~cpu:1 ~vpn:9 ~pfn:3 ~writable:true ();
      Tlb.shootdown t ~targets:[| true; true |] ~vpns:[ 9 ];
      check Alcotest.int "deferred" 1 (Tlb.batch_pending t);
      Tlb.timer_tick t ~cpu:0;
      check Alcotest.int "young batch survives the tick" 1
        (Tlb.batch_pending t);
      Engine.tick 10_000;
      Tlb.timer_tick t ~cpu:0;
      check Alcotest.int "aged batch flushed" 0 (Tlb.batch_pending t);
      check (Alcotest.option Alcotest.int) "invalidated" None
        (lookup_pfn t ~cpu:1 ~vpn:9);
      check Alcotest.bool "stall recorded" true
        ((Tlb.counters t).Tlb.worst_stall >= 10_000))

let test_batched_on_flush_fifo () =
  in_sim ~ncpus:2 (fun () ->
      let t =
        Tlb.create
          ~policy:(batched ~window:1_000_000 ~max_batch:100)
          ~ncpus:2 ~strategy:Tlb.Sync ()
      in
      let order = ref [] in
      let sd i =
        Tlb.shootdown
          ~on_flush:(fun () -> order := i :: !order)
          t ~targets:[| true; true |] ~vpns:[ i ]
      in
      sd 1;
      sd 2;
      sd 3;
      check (Alcotest.list Alcotest.int) "nothing ran while deferred" []
        (List.rev !order);
      Tlb.flush_pending t;
      check (Alcotest.list Alcotest.int) "callbacks run in enqueue order"
        [ 1; 2; 3 ] (List.rev !order))

let test_batched_no_remote_runs_immediately () =
  in_sim ~ncpus:2 (fun () ->
      let t =
        Tlb.create
          ~policy:(batched ~window:1_000_000 ~max_batch:8)
          ~ncpus:2 ~strategy:Tlb.Sync ()
      in
      let ran = ref false in
      (* Only the initiator is targeted: no remote CPU can hold a stale
         translation, so dependent work must not be deferred. *)
      Tlb.shootdown
        ~on_flush:(fun () -> ran := true)
        t ~targets:[| true; false |] ~vpns:[ 4 ];
      check Alcotest.bool "on_flush ran immediately" true !ran;
      check Alcotest.int "nothing deferred" 0 (Tlb.batch_pending t))

let test_set_policy_flushes () =
  in_sim ~ncpus:2 (fun () ->
      let t =
        Tlb.create
          ~policy:(batched ~window:1_000_000 ~max_batch:8)
          ~ncpus:2 ~strategy:Tlb.Sync ()
      in
      Tlb.install t ~cpu:1 ~vpn:5 ~pfn:2 ~writable:true ();
      let ran = ref false in
      Tlb.shootdown
        ~on_flush:(fun () -> ran := true)
        t ~targets:[| true; true |] ~vpns:[ 5 ];
      check Alcotest.bool "deferred" false !ran;
      Tlb.set_policy t Tlb.Immediate;
      check Alcotest.bool "drained on policy switch" true !ran;
      check (Alcotest.option Alcotest.int) "invalidated" None
        (lookup_pfn t ~cpu:1 ~vpn:5);
      check Alcotest.string "policy name" "immediate"
        (Tlb.policy_to_string (Tlb.policy t)))

(* -- Coherence through the full CortenMM stack -- *)

let test_no_stale_write_after_mprotect () =
  (* cpu 1 caches a writable translation; cpu 0 write-protects the page.
     cpu 1's next write must fault, not sneak through a stale entry. *)
  let kernel = Cortenmm.Kernel.create ~ncpus:2 () in
  let asp = Cortenmm.Addr_space.create kernel Cortenmm.Config.adv in
  let addr = 0x4000_0000 in
  let w = Engine.create ~ncpus:2 in
  let faulted = ref false in
  Engine.spawn w ~cpu:1 (fun () ->
      ignore (Mm_compat.mmap asp ~addr ~len:4096 ~perm:Perm.rw ());
      Cortenmm.Mm.touch asp ~vaddr:addr ~write:true);
  Engine.run w;
  let w = Engine.create ~ncpus:2 in
  Engine.spawn w ~cpu:0 (fun () ->
      Mm_compat.mprotect asp ~addr ~len:4096 ~perm:Perm.r);
  Engine.run w;
  let w = Engine.create ~ncpus:2 in
  Engine.spawn w ~cpu:1 (fun () ->
      (* LATR may still hold the flush in cpu1's buffer; the timer tick
         runs before user code resumes after an interrupt. *)
      Cortenmm.Mm.timer_tick asp;
      try Cortenmm.Mm.touch asp ~vaddr:addr ~write:true
      with Cortenmm.Mm.Fault _ -> faulted := true);
  Engine.run w;
  check Alcotest.bool "write after mprotect faults" true !faulted

let test_unmap_invalidates_all_cpus () =
  let ncpus = 4 in
  let kernel = Cortenmm.Kernel.create ~ncpus () in
  let asp = Cortenmm.Addr_space.create kernel Cortenmm.Config.adv in
  let addr = 0x4000_0000 in
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      ignore (Mm_compat.mmap asp ~addr ~len:4096 ~perm:Perm.rw ()));
  Engine.run w;
  let w = Engine.create ~ncpus in
  for c = 0 to ncpus - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        Cortenmm.Mm.touch asp ~vaddr:addr ~write:false)
  done;
  Engine.run w;
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () -> Mm_compat.munmap asp ~addr ~len:4096);
  Engine.run w;
  (* Every CPU's next access must fault. *)
  let faults = ref 0 in
  let w = Engine.create ~ncpus in
  for c = 0 to ncpus - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        Cortenmm.Mm.timer_tick asp;
        try Cortenmm.Mm.touch asp ~vaddr:addr ~write:false
        with Cortenmm.Mm.Fault _ -> incr faults)
  done;
  Engine.run w;
  check Alcotest.int "all cpus fault after unmap" ncpus !faults

let () =
  Alcotest.run "mm_tlb"
    [
      ( "model",
        [
          Alcotest.test_case "install/lookup" `Quick test_install_lookup;
          Alcotest.test_case "read-only blocks writes" `Quick
            test_readonly_entry_blocks_write;
          Alcotest.test_case "sync shootdown" `Quick test_sync_shootdown;
          Alcotest.test_case "early-ack cheaper" `Quick test_early_ack_cheaper;
          Alcotest.test_case "latr defers" `Quick test_latr_defers;
          Alcotest.test_case "latr initiator cheap" `Quick
            test_latr_initiator_cheap;
        ] );
      ( "policy",
        [
          Alcotest.test_case "batched: size trigger coalesces" `Quick
            test_batched_size_trigger;
          Alcotest.test_case "batched: window trigger on tick" `Quick
            test_batched_window_trigger;
          Alcotest.test_case "batched: on_flush FIFO" `Quick
            test_batched_on_flush_fifo;
          Alcotest.test_case "batched: no remote -> immediate" `Quick
            test_batched_no_remote_runs_immediately;
          Alcotest.test_case "set_policy drains" `Quick
            test_set_policy_flushes;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "no stale write after mprotect" `Quick
            test_no_stale_write_after_mprotect;
          Alcotest.test_case "unmap invalidates all cpus" `Quick
            test_unmap_invalidates_all_cpus;
        ] );
    ]
