(* Tests for the deterministic multicore simulator: virtual time accounting,
   cache-line serialization, lock mutual exclusion and fairness, RCU grace
   periods, and determinism across runs. *)

open Mm_sim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* -- Engine basics -- *)

let test_tick_accumulates () =
  let w = Engine.create ~ncpus:2 in
  Engine.spawn w ~cpu:0 (fun () ->
      Engine.tick 10;
      Engine.tick 5;
      check int "now" 15 (Engine.now ()));
  Engine.spawn w ~cpu:1 (fun () -> Engine.tick 100);
  Engine.run w;
  check int "cpu0 time" 15 (Engine.cpu_time w 0);
  check int "cpu1 time" 100 (Engine.cpu_time w 1);
  check int "max time" 100 (Engine.max_time w)

let test_cpu_id () =
  let w = Engine.create ~ncpus:3 in
  let seen = Array.make 3 (-1) in
  for c = 0 to 2 do
    Engine.spawn w ~cpu:c (fun () -> seen.(c) <- Engine.cpu_id ())
  done;
  Engine.run w;
  Alcotest.(check (array int)) "cpu ids" [| 0; 1; 2 |] seen

let test_park_unpark () =
  let w = Engine.create ~ncpus:2 in
  let slot = ref None in
  let order = ref [] in
  Engine.spawn w ~cpu:0 (fun () ->
      Engine.park (fun p -> slot := Some p);
      order := "woken" :: !order;
      check int "resumed at" 500 (Engine.now ()));
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 50;
      (match !slot with
      | Some p -> Engine.unpark p ~at:500
      | None -> Alcotest.fail "fiber 0 did not park first");
      order := "waker" :: !order);
  Engine.run w;
  Alcotest.(check (list string)) "order" [ "woken"; "waker" ] !order

let test_deadlock_detection () =
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () -> Engine.park (fun _ -> ()));
  Alcotest.check_raises "deadlock"
    (Engine.Deadlock "simulation stuck: 1 fiber(s) parked with no wake-up")
    (fun () -> Engine.run w)

let test_serialize_orders_by_time () =
  (* Two fibers interact with shared state at different virtual times; the
     one with the smaller time must apply first even if spawned later. *)
  let w = Engine.create ~ncpus:2 in
  let log = ref [] in
  Engine.spawn w ~cpu:0 (fun () ->
      Engine.tick 100;
      Engine.serialize ();
      log := (`A, Engine.now ()) :: !log);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 10;
      Engine.serialize ();
      log := (`B, Engine.now ()) :: !log);
  Engine.run w;
  match List.rev !log with
  | [ (`B, 10); (`A, 100) ] -> ()
  | _ -> Alcotest.fail "shared ops did not apply in virtual-time order"

(* -- Cache-line model -- *)

let test_line_rmw_serializes () =
  (* N CPUs each perform one RMW on the same line at t=0: completion times
     must be spaced by the transfer cost, i.e. fully serialized. *)
  let n = 8 in
  let w = Engine.create ~ncpus:n in
  let line = Engine.Line.make () in
  let times = Array.make n 0 in
  for c = 0 to n - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        Engine.Line.rmw line;
        times.(c) <- Engine.now ())
  done;
  Engine.run w;
  Array.sort compare times;
  for i = 1 to n - 1 do
    check int
      (Printf.sprintf "gap %d" i)
      Cost.line_transfer
      (times.(i) - times.(i - 1))
  done

let test_line_reads_do_not_serialize () =
  (* Concurrent plain reads must all complete at (roughly) the same time. *)
  let n = 8 in
  let w = Engine.create ~ncpus:n in
  let line = Engine.Line.make () in
  let times = Array.make n 0 in
  for c = 0 to n - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        Engine.Line.read line;
        times.(c) <- Engine.now ())
  done;
  Engine.run w;
  let mx = Array.fold_left max 0 times in
  check bool "all reads fast" true (mx <= Cost.cache_shared)

let test_line_local_rmw_cheap () =
  let w = Engine.create ~ncpus:1 in
  let line = Engine.Line.make () in
  Engine.spawn w ~cpu:0 (fun () ->
      Engine.Line.rmw line;
      let t1 = Engine.now () in
      Engine.Line.rmw line;
      check int "second rmw local" (t1 + Cost.atomic_local) (Engine.now ()));
  Engine.run w

(* -- Mutex -- *)

let test_mutex_mutual_exclusion () =
  let n = 6 and iters = 20 in
  let w = Engine.create ~ncpus:n in
  let m = Mutex_s.make () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let count = ref 0 in
  for c = 0 to n - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        for _ = 1 to iters do
          Mutex_s.lock m;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Engine.tick 50;
          (* The critical section body must be exclusive. *)
          Engine.serialize ();
          incr count;
          decr inside;
          Mutex_s.unlock m
        done)
  done;
  Engine.run w;
  check int "max inside" 1 !max_inside;
  check int "total iterations" (n * iters) !count

let test_mutex_wrong_unlock () =
  let w = Engine.create ~ncpus:2 in
  let m = Mutex_s.make () in
  let failed = ref false in
  Engine.spawn w ~cpu:0 (fun () ->
      Mutex_s.lock m;
      Engine.tick 1000;
      Mutex_s.unlock m);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 10;
      (try Mutex_s.unlock m with Failure _ -> failed := true));
  Engine.run w;
  check bool "non-holder unlock rejected" true !failed

let test_mutex_fifo () =
  let w = Engine.create ~ncpus:4 in
  let m = Mutex_s.make () in
  let order = ref [] in
  Engine.spawn w ~cpu:0 (fun () ->
      Mutex_s.lock m;
      Engine.tick 10_000;
      Mutex_s.unlock m);
  for c = 1 to 3 do
    Engine.spawn w ~cpu:c (fun () ->
        Engine.tick (c * 100);
        (* Arrival order: cpu1, cpu2, cpu3. *)
        Mutex_s.lock m;
        order := c :: !order;
        Mutex_s.unlock m)
  done;
  Engine.run w;
  Alcotest.(check (list int)) "fifo handoff" [ 1; 2; 3 ] (List.rev !order)

let test_try_lock () =
  let w = Engine.create ~ncpus:2 in
  let m = Mutex_s.make () in
  let second = ref None in
  Engine.spawn w ~cpu:0 (fun () ->
      assert (Mutex_s.try_lock m);
      Engine.tick 1_000;
      Mutex_s.unlock m);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 100;
      second := Some (Mutex_s.try_lock m));
  Engine.run w;
  check (Alcotest.option bool) "try_lock contended" (Some false) !second

(* -- Rwlock -- *)

let test_rwlock_readers_concurrent () =
  let n = 6 in
  let w = Engine.create ~ncpus:n in
  let l = Rwlock_s.make () in
  let max_readers = ref 0 in
  for c = 0 to n - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        Rwlock_s.read_lock l;
        if Rwlock_s.readers l > !max_readers then
          max_readers := Rwlock_s.readers l;
        Engine.tick 500;
        Rwlock_s.read_unlock l)
  done;
  Engine.run w;
  check bool "readers overlap" true (!max_readers > 1)

let test_rwlock_writer_excludes () =
  let w = Engine.create ~ncpus:4 in
  let l = Rwlock_s.make () in
  let writer_inside = ref false in
  let violation = ref false in
  Engine.spawn w ~cpu:0 (fun () ->
      Rwlock_s.write_lock l;
      writer_inside := true;
      Engine.tick 2_000;
      Engine.serialize ();
      writer_inside := false;
      Rwlock_s.write_unlock l);
  for c = 1 to 3 do
    Engine.spawn w ~cpu:c (fun () ->
        Engine.tick 100;
        Rwlock_s.read_lock l;
        if !writer_inside then violation := true;
        Engine.tick 50;
        Rwlock_s.read_unlock l)
  done;
  Engine.run w;
  check bool "no reader inside writer section" false !violation

let test_rwlock_phase_fair () =
  (* With a writer pending, later readers must wait behind it: the writer
     must not starve. *)
  let w = Engine.create ~ncpus:3 in
  let l = Rwlock_s.make () in
  let log = ref [] in
  Engine.spawn w ~cpu:0 (fun () ->
      Rwlock_s.read_lock l;
      Engine.tick 1_000;
      Rwlock_s.read_unlock l);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 100;
      Rwlock_s.write_lock l;
      log := `W :: !log;
      Engine.tick 100;
      Rwlock_s.write_unlock l);
  Engine.spawn w ~cpu:2 (fun () ->
      Engine.tick 200;
      (* Arrives after the writer queued: must be admitted after it. *)
      Rwlock_s.read_lock l;
      log := `R :: !log;
      Rwlock_s.read_unlock l);
  Engine.run w;
  match List.rev !log with
  | [ `W; `R ] -> ()
  | _ -> Alcotest.fail "writer was starved by a later reader"

let test_rwlock_downgrade () =
  let w = Engine.create ~ncpus:2 in
  let l = Rwlock_s.make () in
  let observed = ref (-1) in
  Engine.spawn w ~cpu:0 (fun () ->
      Rwlock_s.write_lock l;
      Engine.tick 100;
      Rwlock_s.downgrade l;
      Engine.tick 1_000;
      Rwlock_s.read_unlock l);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 300;
      Rwlock_s.read_lock l;
      observed := Rwlock_s.readers l;
      Rwlock_s.read_unlock l);
  Engine.run w;
  check int "two readers after downgrade" 2 !observed

let test_rwlock_upgrade () =
  (* Upgrade is release-then-acquire (as the Linux fault path uses it):
     the upgrader must wait for other readers to drain. *)
  let w = Engine.create ~ncpus:2 in
  let l = Rwlock_s.make () in
  let upgraded_at = ref (-1) in
  Engine.spawn w ~cpu:0 (fun () ->
      Rwlock_s.read_lock l;
      Engine.tick 100;
      Rwlock_s.upgrade l;
      upgraded_at := Engine.now ();
      check bool "writer after upgrade" true (Rwlock_s.writer_active l);
      Rwlock_s.write_unlock l);
  Engine.spawn w ~cpu:1 (fun () ->
      Rwlock_s.read_lock l;
      Engine.tick 5_000;
      Rwlock_s.read_unlock l);
  Engine.run w;
  check bool "upgrade waited for the other reader" true (!upgraded_at >= 5_000)

let test_bravo_revocation_cost () =
  (* A writer on a BRAVO lock pays a scan proportional to the CPU count. *)
  let ncpus = 16 in
  let w = Engine.create ~ncpus in
  let l = Rwlock_s.make ~bravo:true () in
  Engine.spawn w ~cpu:0 (fun () ->
      Rwlock_s.write_lock l;
      Rwlock_s.write_unlock l);
  Engine.run w;
  check int "one revocation" 1 (Rwlock_s.revocations l);
  check bool "revocation scan cost" true
    (Engine.cpu_time w 0 >= Cost.bravo_revoke_per_cpu * ncpus)

(* -- RCU -- *)

let test_rcu_immediate_free () =
  let w = Engine.create ~ncpus:2 in
  let rcu = Rcu_s.make ~ncpus:2 in
  let freed = ref false in
  Engine.spawn w ~cpu:0 (fun () -> Rcu_s.defer rcu (fun () -> freed := true));
  Engine.run w;
  check bool "freed immediately (no readers)" true !freed;
  check int "immediate count" 1 (Rcu_s.immediate rcu)

let test_rcu_grace_period () =
  let w = Engine.create ~ncpus:3 in
  let rcu = Rcu_s.make ~ncpus:3 in
  let freed_at = ref (-1) in
  Engine.spawn w ~cpu:0 (fun () ->
      Rcu_s.read_lock rcu;
      Engine.tick 5_000;
      Rcu_s.read_unlock rcu);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 100;
      Rcu_s.defer rcu (fun () -> freed_at := Engine.now ()));
  Engine.run w;
  check bool "free deferred past reader exit" true (!freed_at >= 5_000)

let test_rcu_nested_read_sections () =
  let w = Engine.create ~ncpus:2 in
  let rcu = Rcu_s.make ~ncpus:2 in
  let freed_before_outer_exit = ref false in
  Engine.spawn w ~cpu:0 (fun () ->
      Rcu_s.read_lock rcu;
      Rcu_s.read_lock rcu;
      Engine.tick 1_000;
      Rcu_s.read_unlock rcu;
      (* Still inside the outer section. *)
      Engine.tick 1_000;
      Rcu_s.read_unlock rcu);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 500;
      Rcu_s.defer rcu (fun () ->
          if Rcu_s.in_read_section rcu ~cpu:0 then
            freed_before_outer_exit := true));
  Engine.run w;
  check bool "nested section respected" false !freed_before_outer_exit

let test_rcu_synchronize () =
  let w = Engine.create ~ncpus:2 in
  let rcu = Rcu_s.make ~ncpus:2 in
  let sync_done_at = ref (-1) in
  Engine.spawn w ~cpu:0 (fun () ->
      Rcu_s.read_lock rcu;
      Engine.tick 3_000;
      Rcu_s.read_unlock rcu);
  Engine.spawn w ~cpu:1 (fun () ->
      Engine.tick 10;
      Rcu_s.synchronize rcu;
      sync_done_at := Engine.now ());
  Engine.run w;
  check bool "synchronize waited" true (!sync_done_at >= 3_000)

(* -- Determinism -- *)

let run_chaos seed =
  let n = 4 in
  let w = Engine.create ~ncpus:n in
  let m = Mutex_s.make () in
  let l = Rwlock_s.make () in
  let acc = ref 0 in
  for c = 0 to n - 1 do
    let rng = Mm_util.Rng.create ~seed:(seed + c) in
    Engine.spawn w ~cpu:c (fun () ->
        for _ = 1 to 30 do
          match Mm_util.Rng.int rng 3 with
          | 0 ->
            Mutex_s.lock m;
            acc := !acc + 1;
            Engine.tick (Mm_util.Rng.int rng 100);
            Mutex_s.unlock m
          | 1 ->
            Rwlock_s.read_lock l;
            Engine.tick (Mm_util.Rng.int rng 50);
            Rwlock_s.read_unlock l
          | _ ->
            Rwlock_s.write_lock l;
            acc := !acc * 3 mod 1_000_003;
            Rwlock_s.write_unlock l
        done)
  done;
  Engine.run w;
  (!acc, Engine.max_time w, (Engine.stats w).Engine.rmws)

let test_determinism () =
  let a = run_chaos 42 in
  let b = run_chaos 42 in
  let c = run_chaos 43 in
  check bool "same seed, same run" true (a = b);
  check bool "different seed differs" true (a <> c)

(* -- Pqueue -- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 ~key:0 ~seq:0 "c";
  Pqueue.push q ~time:1 ~key:0 ~seq:1 "a";
  Pqueue.push q ~time:5 ~key:0 ~seq:2 "d";
  Pqueue.push q ~time:2 ~key:0 ~seq:3 "b";
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
      out := v :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d" ]
    (List.rev !out)

let pqueue_prop =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.push q ~time:t ~key:0 ~seq:i t) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

(* -- Scheduler tie-break policies -- *)

(* Four fibers contend for one mutex from time 0: every spawn event and
   every serialize re-entry is a same-time tie, so the acquisition order
   is decided purely by the policy. *)
let run_tie_scenario sched =
  let w = Engine.create_sched ~sched ~ncpus:4 in
  let m = Mutex_s.make () in
  let order = ref [] in
  for c = 0 to 3 do
    Engine.spawn w ~cpu:c (fun () ->
        Mutex_s.lock m;
        order := c :: !order;
        Engine.tick 10;
        Mutex_s.unlock m)
  done;
  Engine.run w;
  List.rev !order

(* Golden: the fifo policy must keep the engine's historical
   deterministic order, bit for bit. If this changes, every golden
   digest in the repository (fig1 etc.) changes with it — an intended
   change must update both and say so in review. *)
let test_sched_default_golden () =
  Alcotest.(check (list int))
    "default tie-break order" [ 0; 1; 2; 3 ]
    (run_tie_scenario (Sched.fifo ()))

let test_sched_random_permutes () =
  let base = run_tie_scenario (Sched.fifo ()) in
  let seeds = List.init 20 (fun i -> i + 1) in
  let permuted =
    List.exists
      (fun seed -> run_tie_scenario (Sched.random ~seed ()) <> base)
      seeds
  in
  check bool "some seed permutes the tie order" true permuted;
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        "same seed reproduces"
        (run_tie_scenario (Sched.random ~seed ()))
        (run_tie_scenario (Sched.random ~seed ())))
    seeds

let test_sched_replay_reproduces () =
  List.iter
    (fun seed ->
      let recording = Sched.random ~seed () in
      let order = run_tie_scenario recording in
      let keys = Sched.recorded recording in
      Alcotest.(check (list int))
        "replayed keys give the same run" order
        (run_tie_scenario (Sched.replay keys));
      (* A truncated key array is still a valid (different or equal)
         deterministic schedule: keys past the end default to 0. *)
      let half = Array.sub keys 0 (Array.length keys / 2) in
      Alcotest.(check (list int))
        "truncated replay is deterministic"
        (run_tie_scenario (Sched.replay half))
        (run_tie_scenario (Sched.replay half)))
    [ 1; 7; 42 ]

let () =
  Alcotest.run "mm_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "tick accumulates" `Quick test_tick_accumulates;
          Alcotest.test_case "cpu ids" `Quick test_cpu_id;
          Alcotest.test_case "park/unpark" `Quick test_park_unpark;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "serialize time order" `Quick
            test_serialize_orders_by_time;
        ] );
      ( "line",
        [
          Alcotest.test_case "rmw serializes" `Quick test_line_rmw_serializes;
          Alcotest.test_case "reads concurrent" `Quick
            test_line_reads_do_not_serialize;
          Alcotest.test_case "local rmw cheap" `Quick test_line_local_rmw_cheap;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_mutex_mutual_exclusion;
          Alcotest.test_case "wrong unlock" `Quick test_mutex_wrong_unlock;
          Alcotest.test_case "fifo handoff" `Quick test_mutex_fifo;
          Alcotest.test_case "try_lock" `Quick test_try_lock;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers concurrent" `Quick
            test_rwlock_readers_concurrent;
          Alcotest.test_case "writer excludes" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "phase fair" `Quick test_rwlock_phase_fair;
          Alcotest.test_case "downgrade" `Quick test_rwlock_downgrade;
          Alcotest.test_case "upgrade" `Quick test_rwlock_upgrade;
          Alcotest.test_case "bravo revocation" `Quick
            test_bravo_revocation_cost;
        ] );
      ( "rcu",
        [
          Alcotest.test_case "immediate free" `Quick test_rcu_immediate_free;
          Alcotest.test_case "grace period" `Quick test_rcu_grace_period;
          Alcotest.test_case "nested sections" `Quick
            test_rcu_nested_read_sections;
          Alcotest.test_case "synchronize" `Quick test_rcu_synchronize;
        ] );
      ( "determinism",
        [ Alcotest.test_case "chaos runs repeat" `Quick test_determinism ] );
      ( "sched",
        [
          Alcotest.test_case "default order golden" `Quick
            test_sched_default_golden;
          Alcotest.test_case "random permutes ties" `Quick
            test_sched_random_permutes;
          Alcotest.test_case "replay reproduces" `Quick
            test_sched_replay_reproduces;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          QCheck_alcotest.to_alcotest pqueue_prop;
        ] );
    ]
