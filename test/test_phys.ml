(* Tests for the physical memory substrate: the buddy allocator (splits,
   merges, alignment, double-free detection, invariant preservation under
   random workloads), frame descriptors, NUMA striping and accounting. *)

module Buddy = Mm_phys.Buddy
module Phys = Mm_phys.Phys
module Frame = Mm_phys.Frame

let check = Alcotest.check

(* -- Buddy basics -- *)

let test_alloc_distinct () =
  let b = Buddy.create ~nframes:1024 in
  let a = Buddy.alloc b ~order:0 in
  let c = Buddy.alloc b ~order:0 in
  check Alcotest.bool "distinct" true (a <> c);
  check Alcotest.int "two allocated" 2 (Buddy.allocated_frames b);
  Buddy.check_invariants b

let test_alignment () =
  let b = Buddy.create ~nframes:(1 lsl 16) in
  let _ = Buddy.alloc b ~order:0 in
  let big = Buddy.alloc b ~order:6 in
  check Alcotest.bool "order-6 block aligned" true
    (Mm_util.Align.is_aligned big 64);
  let huge = Buddy.alloc b ~order:9 in
  check Alcotest.bool "order-9 block aligned" true
    (Mm_util.Align.is_aligned huge 512);
  Buddy.check_invariants b

let test_split_and_merge () =
  let b = Buddy.create ~nframes:1024 in
  (* Allocate an order-3 block, free it as... no: allocate two order-0
     from a split, free both, the buddies must merge back. *)
  let a = Buddy.alloc b ~order:3 in
  Buddy.free b ~pfn:a ~order:3;
  Buddy.check_invariants b;
  let x = Buddy.alloc b ~order:0 in
  let y = Buddy.alloc b ~order:0 in
  check Alcotest.bool "buddies from one split" true (x lxor y = 1 || x <> y);
  Buddy.free b ~pfn:x ~order:0;
  Buddy.free b ~pfn:y ~order:0;
  Buddy.check_invariants b;
  check Alcotest.bool "merges recorded" true (Buddy.merges b > 0);
  check Alcotest.int "nothing allocated" 0 (Buddy.allocated_frames b)

let test_double_free_detected () =
  let b = Buddy.create ~nframes:1024 in
  let a = Buddy.alloc b ~order:0 in
  Buddy.free b ~pfn:a ~order:0;
  Alcotest.(check bool)
    "double free raises" true
    (try
       Buddy.free b ~pfn:a ~order:0;
       false
     with Invalid_argument _ -> true)

let test_misaligned_free_detected () =
  let b = Buddy.create ~nframes:1024 in
  let _ = Buddy.alloc b ~order:2 in
  Alcotest.(check bool)
    "misaligned free raises" true
    (try
       Buddy.free b ~pfn:1 ~order:2;
       false
     with Invalid_argument _ -> true)

let test_out_of_memory () =
  let b = Buddy.create ~nframes:16 in
  let _ = Buddy.alloc b ~order:4 in
  Alcotest.(check bool)
    "exhaustion raises" true
    (try
       ignore (Buddy.alloc b ~order:0);
       false
     with Buddy.Out_of_memory -> true)

let buddy_stress_prop =
  QCheck.Test.make ~name:"buddy invariants under random alloc/free" ~count:60
    QCheck.(
      pair small_int
        (list_of_size (QCheck.Gen.return 200) (int_bound 3)))
    (fun (seed, orders) ->
      let rng = Mm_util.Rng.create ~seed in
      let b = Buddy.create ~nframes:(1 lsl 14) in
      let live = ref [] in
      List.iter
        (fun order ->
          if Mm_util.Rng.bool rng || !live = [] then begin
            let pfn = Buddy.alloc b ~order in
            live := (pfn, order) :: !live
          end
          else begin
            let i = Mm_util.Rng.int rng (List.length !live) in
            let pfn, order = List.nth !live i in
            live := List.filteri (fun j _ -> j <> i) !live;
            Buddy.free b ~pfn ~order
          end;
          Buddy.check_invariants b)
        orders;
      (* Allocated count equals the live set's frame total. *)
      Buddy.allocated_frames b
      = List.fold_left (fun a (_, o) -> a + (1 lsl o)) 0 !live)

let buddy_no_overlap_prop =
  QCheck.Test.make ~name:"buddy never hands out overlapping blocks" ~count:40
    QCheck.(list_of_size (QCheck.Gen.return 100) (int_bound 4))
    (fun orders ->
      let b = Buddy.create ~nframes:(1 lsl 14) in
      let claimed = Hashtbl.create 256 in
      List.for_all
        (fun order ->
          let pfn = Buddy.alloc b ~order in
          let ok = ref true in
          for i = pfn to pfn + (1 lsl order) - 1 do
            if Hashtbl.mem claimed i then ok := false;
            Hashtbl.replace claimed i ()
          done;
          !ok)
        orders)

(* -- Reference-implementation equivalence --

   A deliberately naive buddy (unsorted association lists, smallest-pfn pop
   by linear scan) implementing the same split/merge/frontier algorithm.
   The optimized allocator must produce identical pfn sequences and
   identical per-order free-block sets on any alloc/free trace. *)

module Ref_buddy = struct
  let max_order = 10

  type t = { nframes : int; mutable frontier : int; free : int list array }

  let create ~nframes =
    { nframes; frontier = 0; free = Array.make (max_order + 1) [] }

  let block_size order = 1 lsl order
  let buddy_of ~pfn ~order = pfn lxor block_size order
  let is_free t ~pfn ~order = List.mem pfn t.free.(order)

  let remove t ~pfn ~order =
    t.free.(order) <- List.filter (fun p -> p <> pfn) t.free.(order)

  let add t ~pfn ~order = t.free.(order) <- pfn :: t.free.(order)

  let pop_min t ~order =
    match t.free.(order) with
    | [] -> None
    | l ->
      let m = List.fold_left min max_int l in
      remove t ~pfn:m ~order;
      Some m

  let rec any_free_above t ~order =
    order < max_order
    && (t.free.(order + 1) <> [] || any_free_above t ~order:(order + 1))

  let rec insert_and_merge t ~pfn ~order ~limit =
    let b = buddy_of ~pfn ~order in
    if
      order < max_order
      && b + block_size order <= limit
      && is_free t ~pfn:b ~order
    then begin
      remove t ~pfn:b ~order;
      insert_and_merge t ~pfn:(min pfn b) ~order:(order + 1) ~limit
    end
    else add t ~pfn ~order

  let release_range t ~lo ~hi =
    let lo = ref lo in
    while !lo < hi do
      let rec align o =
        if
          o < max_order
          && Mm_util.Align.is_aligned !lo (block_size (o + 1))
          && !lo + block_size (o + 1) <= hi
        then align (o + 1)
        else o
      in
      let order = align 0 in
      insert_and_merge t ~pfn:!lo ~order ~limit:hi;
      lo := !lo + block_size order
    done

  let rec alloc t ~order =
    if order > max_order then failwith "ref buddy: out of memory";
    match pop_min t ~order with
    | Some pfn -> pfn
    | None ->
      if not (any_free_above t ~order) then begin
        let pfn = Mm_util.Align.up t.frontier (block_size order) in
        if pfn + block_size order > t.nframes then
          failwith "ref buddy: out of memory";
        release_range t ~lo:t.frontier ~hi:pfn;
        t.frontier <- pfn + block_size order;
        pfn
      end
      else begin
        let big = alloc t ~order:(order + 1) in
        add t ~pfn:(big + block_size order) ~order;
        big
      end

  let free t ~pfn ~order = insert_and_merge t ~pfn ~order ~limit:t.frontier
  let free_blocks t ~order = List.sort compare t.free.(order)
end

(* One seeded random trace, compared step by step: every alloc must return
   the same pfn, and after every operation the full free-list state (all
   orders) must agree, while the optimized allocator's internal invariants
   hold. *)
let run_equivalence_trace ~seed ~steps =
  let nframes = 1 lsl 14 in
  let b = Buddy.create ~nframes in
  let r = Ref_buddy.create ~nframes in
  let rng = Mm_util.Rng.create ~seed in
  let live = ref [] in
  let compare_state step =
    check Alcotest.int
      (Printf.sprintf "step %d: frontier" step)
      r.Ref_buddy.frontier (Buddy.frontier b);
    for order = 0 to 10 do
      check
        Alcotest.(list int)
        (Printf.sprintf "step %d: free blocks of order %d" step order)
        (Ref_buddy.free_blocks r ~order)
        (Buddy.free_blocks b ~order)
    done;
    Buddy.check_invariants b
  in
  for step = 1 to steps do
    if Mm_util.Rng.bool rng || !live = [] then begin
      let order = Mm_util.Rng.int rng 4 in
      let pfn = Buddy.alloc b ~order in
      let pfn' = Ref_buddy.alloc r ~order in
      check Alcotest.int
        (Printf.sprintf "step %d: alloc order %d pfn" step order)
        pfn' pfn;
      live := (pfn, order) :: !live
    end
    else begin
      let i = Mm_util.Rng.int rng (List.length !live) in
      let pfn, order = List.nth !live i in
      live := List.filteri (fun j _ -> j <> i) !live;
      Buddy.free b ~pfn ~order;
      Ref_buddy.free r ~pfn ~order
    end;
    compare_state step
  done

let test_reference_equivalence () =
  List.iter (fun seed -> run_equivalence_trace ~seed ~steps:300) [ 1; 7; 42 ]

(* -- Phys / frames / NUMA -- *)

let test_frame_descriptors () =
  let phys = Phys.create () in
  let f = Phys.alloc phys ~kind:Frame.Anon () in
  check Alcotest.bool "kind set" true (f.Frame.kind = Frame.Anon);
  let same = Phys.frame phys f.Frame.pfn in
  check Alcotest.bool "descriptor identity" true (f == same);
  Phys.free phys f;
  check Alcotest.bool "freed" true (f.Frame.kind = Frame.Free);
  Alcotest.(check bool)
    "free of free raises" true
    (try
       Phys.free phys f;
       false
     with Invalid_argument _ -> true)

let test_usage_accounting () =
  let phys = Phys.create () in
  let f1 = Phys.alloc phys ~kind:Frame.Anon () in
  let _ = Phys.alloc phys ~kind:Frame.Pt_page () in
  let u = Phys.usage phys in
  check Alcotest.int "anon bytes" 4096 u.Phys.anon_bytes;
  check Alcotest.int "pt bytes" 4096 u.Phys.pt_bytes;
  Phys.free phys f1;
  check Alcotest.int "anon released" 0 (Phys.usage phys).Phys.anon_bytes;
  check Alcotest.int "peak remembered" 4096 (Phys.peak_data_bytes phys)

let test_numa_striping () =
  let phys = Phys.create ~numa_nodes:4 () in
  check Alcotest.int "4 nodes" 4 (Phys.numa_nodes phys);
  let frames =
    List.init 4 (fun node -> Phys.alloc phys ~kind:Frame.Anon ~node ())
  in
  List.iteri
    (fun node f ->
      check Alcotest.int
        (Printf.sprintf "frame %d on its node" node)
        node
        (Phys.node_of_pfn phys f.Frame.pfn))
    frames;
  (* Freeing works across nodes. *)
  List.iter (Phys.free phys) frames;
  check Alcotest.int "all released" 0 (Phys.allocated_frames phys)

let test_numa_bad_node_rejected () =
  let phys = Phys.create ~numa_nodes:2 () in
  Alcotest.(check bool)
    "bad node raises" true
    (try
       ignore (Phys.alloc phys ~kind:Frame.Anon ~node:5 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mm_phys"
    [
      ( "buddy",
        [
          Alcotest.test_case "alloc distinct" `Quick test_alloc_distinct;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "split and merge" `Quick test_split_and_merge;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "misaligned free" `Quick
            test_misaligned_free_detected;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          QCheck_alcotest.to_alcotest buddy_stress_prop;
          QCheck_alcotest.to_alcotest buddy_no_overlap_prop;
          Alcotest.test_case "reference equivalence" `Quick
            test_reference_equivalence;
        ] );
      ( "phys",
        [
          Alcotest.test_case "frame descriptors" `Quick test_frame_descriptors;
          Alcotest.test_case "usage accounting" `Quick test_usage_accounting;
          Alcotest.test_case "numa striping" `Quick test_numa_striping;
          Alcotest.test_case "numa bad node" `Quick test_numa_bad_node_rejected;
        ] );
    ]
